package qcache

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/sp"
)

// TestRaceHammerCache drives the sharded LRU from many goroutines with a
// working set larger than the cache, so gets, puts, evictions, TTL
// expiry and purges all interleave. Run under -race (the race Makefile
// tier includes this package); the assertions only sanity-check the
// gauges because correctness under contention IS the absence of races
// plus gauge consistency.
func TestRaceHammerCache(t *testing.T) {
	c := New(Config{MaxEntries: 128, TTL: 2 * time.Millisecond})
	qfps := []Fingerprint{
		FingerprintNodes([]graph.NodeID{1, 2}),
		FingerprintNodes([]graph.NodeID{3, 4, 5}),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				q := qfps[rng.Intn(len(qfps))]
				p := graph.NodeID(rng.Intn(300))
				switch rng.Intn(5) {
				case 0:
					n := 1 + rng.Intn(4)
					nbrs := make([]sp.Neighbor, n)
					for j := range nbrs {
						nbrs[j] = sp.Neighbor{Node: graph.NodeID(j), Dist: float64(j + 1)}
					}
					c.PutList("E", q, p, nbrs, rng.Intn(2) == 0)
				case 1:
					if nbrs, ok := c.GetList("E", q, p, 1+rng.Intn(4)); ok {
						for j := 1; j < len(nbrs); j++ {
							if nbrs[j].Dist < nbrs[j-1].Dist {
								t.Errorf("unsorted cached list %v", nbrs)
								return
							}
						}
					}
				case 2:
					key := rkey("E", 0.5, 1+rng.Intn(3), Fingerprint{Lo: uint64(p)}, q)
					c.PutResult(key, []core.Answer{{P: p, Dist: 1}})
				case 3:
					key := rkey("E", 0.5, 1+rng.Intn(3), Fingerprint{Lo: uint64(p)}, q)
					if ans, ok := c.GetResult(key); ok && (len(ans) != 1 || ans[0].P != p) {
						t.Errorf("cross-wired result %v for p=%d", ans, p)
						return
					}
				case 4:
					if i%512 == 0 {
						c.Purge()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Entries < 0 || m.Bytes < 0 {
		t.Fatalf("gauges went negative: %+v", m)
	}
	c.Purge()
	if m := c.Metrics(); m.Entries != 0 || m.Bytes != 0 {
		t.Fatalf("purge left %+v", m)
	}
}

// TestRaceHammerFlight mixes successful, failing, canceled and panicking
// leaders over a small key space and then checks that no goroutine is
// left behind — the coalescing layer must never leak a parked follower.
func TestRaceHammerFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f := NewFlight(func(err error) bool { return errors.Is(err, core.ErrNoResult) })
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < 400; i++ {
				key := fkey(string(rune('a' + rng.Intn(3))))
				mode := rng.Intn(4)
				ctx := context.Background()
				var cancel context.CancelFunc
				if mode == 2 {
					ctx, cancel = context.WithCancel(ctx)
					cancel() // follower/leader with a dead ctx
				}
				func() {
					defer func() { recover() }() // mode 3 panics
					f.Do(ctx, key, "rid", func() (any, error) {
						switch mode {
						case 0:
							return i, nil
						case 1:
							return nil, core.ErrNoResult
						case 3:
							panic("leader down")
						default:
							return nil, ctx.Err()
						}
					})
				}()
				if cancel != nil {
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d, baseline %d — leaked followers", runtime.NumGoroutine(), baseline)
}
