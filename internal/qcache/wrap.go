package qcache

import (
	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/sp"
)

// Wrap returns a GPhi that serves Dist/Subset from the cache's
// neighbor-list layer, falling through to inner's KNearest on misses and
// filling the cache for the next query. The wrapper is cheap, carries
// per-request state (the bound Q's fingerprint, the bound Stats) and
// must not be shared across goroutines — create one per request around a
// pooled engine. When the cache is nil or inner cannot enumerate
// neighbors, inner is returned unchanged.
func (c *Cache) Wrap(inner core.GPhi) core.GPhi {
	if c == nil {
		return inner
	}
	ns, ok := inner.(core.NeighborSearcher)
	if !ok {
		return inner
	}
	return &cachedEngine{inner: inner, ns: ns, c: c, name: inner.Name()}
}

type cachedEngine struct {
	inner core.GPhi
	ns    core.NeighborSearcher
	c     *Cache
	name  string
	qfp   Fingerprint
	stats *core.Stats
}

func (e *cachedEngine) Name() string { return e.inner.Name() }

// BindStats keeps a handle for hit/miss attribution and forwards the
// binding so inner's settles land on the same Stats on misses.
func (e *cachedEngine) BindStats(s *core.Stats) {
	e.stats = s
	core.BindStats(e.inner, s)
}

// BindCancel forwards the request's cancellation channel so blocking
// wrappers beneath the cache (chaos latency) still wake on cancel.
func (e *cachedEngine) BindCancel(done <-chan struct{}) {
	core.BindCancel(e.inner, done)
}

func (e *cachedEngine) Reset(Q []graph.NodeID) {
	e.qfp = FingerprintNodes(Q)
	e.inner.Reset(Q)
}

// lookup serves the k-nearest list for p from cache or computes and
// fills it. The result is sorted ascending and holds min(k, reachable)
// neighbors.
func (e *cachedEngine) lookup(p graph.NodeID, k int) []sp.Neighbor {
	if nbrs, ok := e.c.GetList(e.name, e.qfp, p, k); ok {
		e.stats.CountCacheHit()
		return nbrs
	}
	e.stats.CountCacheMiss()
	nbrs := e.ns.KNearest(p, k, nil)
	e.c.PutList(e.name, e.qfp, p, nbrs, len(nbrs) < k)
	return nbrs
}

func (e *cachedEngine) Dist(p graph.NodeID, k int, agg core.Aggregate) (float64, bool) {
	return core.AggSorted(e.lookup(p, k), k, agg)
}

func (e *cachedEngine) Subset(p graph.NodeID, k int, dst []graph.NodeID) []graph.NodeID {
	nbrs := e.lookup(p, k)
	if len(nbrs) > k {
		nbrs = nbrs[:k]
	}
	for _, nb := range nbrs {
		dst = append(dst, nb.Node)
	}
	return dst
}

// KNearest makes wrapped engines themselves wrappable and keeps the
// NeighborSearcher contract visible through the cache.
func (e *cachedEngine) KNearest(p graph.NodeID, k int, dst []sp.Neighbor) []sp.Neighbor {
	nbrs := e.lookup(p, k)
	if len(nbrs) > k {
		nbrs = nbrs[:k]
	}
	return append(dst, nbrs...)
}
