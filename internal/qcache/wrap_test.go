package qcache

import (
	"math"
	"testing"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/sp"
)

// stubEngine is a deterministic GPhi+NeighborSearcher over a fixed
// neighbor table, counting substrate calls so tests can assert elision.
type stubEngine struct {
	table map[graph.NodeID][]sp.Neighbor
	calls int
}

func (s *stubEngine) Name() string           { return "stub" }
func (s *stubEngine) Reset(Q []graph.NodeID) {}
func (s *stubEngine) knn(p graph.NodeID, k int) []sp.Neighbor {
	s.calls++
	nbrs := s.table[p]
	if k > len(nbrs) {
		k = len(nbrs)
	}
	return nbrs[:k]
}
func (s *stubEngine) Dist(p graph.NodeID, k int, agg core.Aggregate) (float64, bool) {
	return core.AggSorted(s.knn(p, k), k, agg)
}
func (s *stubEngine) Subset(p graph.NodeID, k int, dst []graph.NodeID) []graph.NodeID {
	for _, nb := range s.knn(p, k) {
		dst = append(dst, nb.Node)
	}
	return dst
}
func (s *stubEngine) KNearest(p graph.NodeID, k int, dst []sp.Neighbor) []sp.Neighbor {
	return append(dst, s.knn(p, k)...)
}

func TestWrapPassthroughWhenUnsupported(t *testing.T) {
	var c *Cache
	inner := &stubEngine{}
	if got := c.Wrap(inner); got != core.GPhi(inner) {
		t.Fatalf("nil cache should return inner unchanged")
	}
	c = New(Config{MaxEntries: 8})
	type bare struct{ core.GPhi }
	plain := bare{inner}
	if got := c.Wrap(plain); got != core.GPhi(plain) {
		t.Fatalf("engine without KNearest should pass through")
	}
}

func TestWrapServesPrefixesAndCompleteLists(t *testing.T) {
	c := New(Config{MaxEntries: 64})
	stub := &stubEngine{table: map[graph.NodeID][]sp.Neighbor{
		1: {{Node: 10, Dist: 1}, {Node: 11, Dist: 2}, {Node: 12, Dist: 3}},
		2: {{Node: 10, Dist: 5}}, // only one member of Q reachable
	}}
	var stats core.Stats
	w := c.Wrap(stub)
	core.BindStats(w, &stats)
	w.Reset([]graph.NodeID{10, 11, 12})

	// Cold fill at k=3, then every k' ≤ 3 and the subset come from cache.
	if d, ok := w.Dist(1, 3, core.Sum); !ok || d != 6 {
		t.Fatalf("cold Dist = %v ok=%v", d, ok)
	}
	callsAfterFill := stub.calls
	if d, ok := w.Dist(1, 2, core.Max); !ok || d != 2 {
		t.Fatalf("warm Dist = %v ok=%v", d, ok)
	}
	if got := w.Subset(1, 3, nil); len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("warm Subset = %v", got)
	}
	if nb := w.(core.NeighborSearcher).KNearest(1, 1, nil); len(nb) != 1 || nb[0].Node != 10 {
		t.Fatalf("warm KNearest = %v", nb)
	}
	if stub.calls != callsAfterFill {
		t.Fatalf("warm lookups reached the engine: %d calls after %d", stub.calls, callsAfterFill)
	}
	if stats.CacheHits != 3 || stats.CacheMisses != 1 {
		t.Fatalf("stats %+v", stats)
	}

	// Unreachable tail: k=4 asked, 1 returned, marked complete — a later
	// k=2 is answered from the complete list without recompute and the
	// fold still reports unreachable.
	if d, ok := w.Dist(2, 4, core.Max); ok || !math.IsInf(d, 1) {
		t.Fatalf("unreachable Dist = %v ok=%v", d, ok)
	}
	calls := stub.calls
	if d, ok := w.Dist(2, 2, core.Max); ok || !math.IsInf(d, 1) {
		t.Fatalf("unreachable warm Dist = %v ok=%v", d, ok)
	}
	if got := w.Subset(2, 2, nil); len(got) != 1 || got[0] != 10 {
		t.Fatalf("unreachable Subset = %v", got)
	}
	if stub.calls != calls {
		t.Fatalf("complete list not reused")
	}
}

func TestWrapAgreesWithRawEngines(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{Nodes: 200, Seed: 77, Name: "wrap"})
	if err != nil {
		t.Fatal(err)
	}
	engines := []core.GPhi{core.NewINE(g), core.NewOracleGPhi("A*", sp.NewAStar(g))}
	P := []graph.NodeID{3, 17, 42, 99, 140, 181}
	Q := []graph.NodeID{5, 60, 120, 150, 199}
	for _, raw := range engines {
		c := New(Config{MaxEntries: 1024})
		for pass := 0; pass < 2; pass++ {
			// Descending φ so pass 0 fills at the largest k and smaller k
			// are subsumption hits even within the first pass.
			for _, phi := range []float64{1.0, 0.75, 0.5, 0.25, 0.01} {
				q := core.Query{P: P, Q: Q, Phi: phi, Agg: core.Sum}
				want, errW := core.GD(g, raw, q)
				warm := c.Wrap(raw)
				got, errG := core.GD(g, warm, q)
				if (errW == nil) != (errG == nil) {
					t.Fatalf("%s φ=%v: err %v vs %v", raw.Name(), phi, errW, errG)
				}
				if errW != nil {
					continue
				}
				if got.P != want.P || math.Abs(got.Dist-want.Dist) > 1e-9*(1+want.Dist) {
					t.Fatalf("%s φ=%v: warm (%d, %v) vs raw (%d, %v)",
						raw.Name(), phi, got.P, got.Dist, want.P, want.Dist)
				}
			}
		}
		if m := c.Metrics(); m.HitsSubsume == 0 {
			t.Fatalf("%s: no subsumption hits recorded: %+v", raw.Name(), m)
		}
	}
}
