package qcache

import (
	"math/rand"
	"testing"

	"fannr/internal/graph"
)

func TestFingerprintSetSemantics(t *testing.T) {
	base := []graph.NodeID{9, 3, 17, 4, 256}
	want := FingerprintNodes(base)

	perm := []graph.NodeID{256, 4, 3, 17, 9}
	if got := FingerprintNodes(perm); got != want {
		t.Fatalf("permutation changed fingerprint: %v vs %v", got, want)
	}
	dup := []graph.NodeID{9, 3, 3, 17, 4, 256, 9, 9}
	if got := FingerprintNodes(dup); got != want {
		t.Fatalf("duplicates changed fingerprint: %v vs %v", got, want)
	}
	if got := FingerprintNodes([]graph.NodeID{9, 3, 17, 4}); got == want {
		t.Fatalf("dropping an element kept the fingerprint")
	}
	if got := FingerprintNodes([]graph.NodeID{9, 3, 17, 4, 255}); got == want {
		t.Fatalf("swapping an element kept the fingerprint")
	}
}

func TestFingerprintNoAccidentalCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[Fingerprint][]graph.NodeID{}
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(12)
		ids := make([]graph.NodeID, n)
		for j := range ids {
			ids[j] = graph.NodeID(rng.Intn(4096))
		}
		fp := FingerprintNodes(ids)
		if prev, ok := seen[fp]; ok && !sameSet(prev, ids) {
			t.Fatalf("collision: %v and %v -> %v", prev, ids, fp)
		}
		seen[fp] = append([]graph.NodeID(nil), ids...)
	}
}

func sameSet(a, b []graph.NodeID) bool {
	m := map[graph.NodeID]bool{}
	for _, v := range a {
		m[v] = true
	}
	n := map[graph.NodeID]bool{}
	for _, v := range b {
		if !m[v] {
			return false
		}
		n[v] = true
	}
	return len(m) == len(n)
}

func TestShardOfInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		k := listKeyOf("INE", Fingerprint{Hi: rng.Uint64(), Lo: rng.Uint64()}, graph.NodeID(rng.Intn(1<<20)))
		if s := shardOf(k); s < 0 || s >= numShards {
			t.Fatalf("shard %d out of range", s)
		}
	}
}
