package qcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fannr/internal/core"
	"fannr/internal/graph"
)

// fakeSource is an EngineSource handing out stub engines, counting
// checkouts and discards.
type fakeSource struct {
	acquires atomic.Int64
	releases atomic.Int64
	discards atomic.Int64
	err      error
}

func (s *fakeSource) Acquire(ctx context.Context) (core.GPhi, error) {
	if s.err != nil {
		return nil, s.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.acquires.Add(1)
	return &stubEngine{}, nil
}
func (s *fakeSource) Release(core.GPhi) { s.releases.Add(1) }
func (s *fakeSource) Discard()          { s.discards.Add(1) }

func batcherOver(src *fakeSource, window time.Duration, maxSize int, sizes *[]int) *Batcher {
	var mu sync.Mutex
	return NewBatcher(window, maxSize, func(string) EngineSource { return src }, func(n int) {
		mu.Lock()
		defer mu.Unlock()
		if sizes != nil {
			*sizes = append(*sizes, n)
		}
	})
}

func bkey(engine string, q graph.NodeID) BatchKey {
	return BatchKey{Engine: engine, Q: FingerprintNodes([]graph.NodeID{q})}
}

func TestBatcherGroupsByKey(t *testing.T) {
	src := &fakeSource{}
	var sizes []int
	b := batcherOver(src, 30*time.Millisecond, 32, &sizes)

	var wg sync.WaitGroup
	run := func(key BatchKey, want int) {
		defer wg.Done()
		ans, _, err := b.Do(context.Background(), key, "rid", func(core.GPhi) ([]core.Answer, error) {
			return []core.Answer{{P: graph.NodeID(want)}}, nil
		})
		if err != nil || len(ans) != 1 || ans[0].P != graph.NodeID(want) {
			t.Errorf("task %d: ans=%v err=%v", want, ans, err)
		}
	}
	wg.Add(3)
	go run(bkey("E", 1), 10)
	go run(bkey("E", 1), 11)
	go run(bkey("E", 2), 12) // different Q: its own batch
	wg.Wait()

	if got := src.acquires.Load(); got != 2 {
		t.Fatalf("acquires = %d, want 2 (one per group)", got)
	}
	if src.releases.Load() != 2 {
		t.Fatalf("releases = %d", src.releases.Load())
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != 3 || len(sizes) != 2 {
		t.Fatalf("flush sizes %v", sizes)
	}
}

func TestBatcherMaxSizeFlushesEarly(t *testing.T) {
	src := &fakeSource{}
	var sizes []int
	b := batcherOver(src, time.Hour, 2, &sizes) // window never fires
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, _, err := b.Do(context.Background(), bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
				return nil, nil
			}); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("flush sizes %v, want one batch of 2", sizes)
	}
}

func TestBatcherPanicIsolation(t *testing.T) {
	src := &fakeSource{}
	b := batcherOver(src, 20*time.Millisecond, 32, nil)
	var wg sync.WaitGroup
	wg.Add(2)
	var boomErr, okErr error
	go func() {
		defer wg.Done()
		_, _, boomErr = b.Do(context.Background(), bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
			panic("task exploded")
		})
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // order the submissions: panicker first
		_, _, okErr = b.Do(context.Background(), bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
			return nil, nil
		})
	}()
	wg.Wait()
	if boomErr == nil || !strings.Contains(boomErr.Error(), "task exploded") {
		t.Fatalf("panicked task err = %v", boomErr)
	}
	if okErr != nil {
		t.Fatalf("survivor err = %v", okErr)
	}
	if src.discards.Load() != 1 {
		t.Fatalf("discards = %d", src.discards.Load())
	}
	// The poisoned engine was replaced for the survivor and released.
	if src.acquires.Load() < 1 || src.releases.Load() != src.acquires.Load()-1 {
		t.Fatalf("acquires=%d releases=%d", src.acquires.Load(), src.releases.Load())
	}
}

func TestBatcherAcquireFailureDeliversToAll(t *testing.T) {
	src := &fakeSource{err: core.ErrSaturated}
	b := batcherOver(src, 10*time.Millisecond, 32, nil)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Do(context.Background(), bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
				t.Error("task ran without an engine")
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, core.ErrSaturated) {
			t.Fatalf("member %d err = %v", i, err)
		}
	}
}

func TestBatcherCanceledMemberSkipped(t *testing.T) {
	src := &fakeSource{}
	b := batcherOver(src, 30*time.Millisecond, 32, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	var canceledErr error
	var ran atomic.Bool
	go func() {
		defer wg.Done()
		_, _, canceledErr = b.Do(ctx, bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
			ran.Store(true)
			return nil, nil
		})
	}()
	var okErr error
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		_, _, okErr = b.Do(context.Background(), bkey("E", 1), "rid", func(core.GPhi) ([]core.Answer, error) {
			return nil, nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel() // before the window closes
	wg.Wait()
	if !errors.Is(canceledErr, context.Canceled) {
		t.Fatalf("canceled member err = %v", canceledErr)
	}
	if ran.Load() {
		t.Fatalf("canceled member's task still ran")
	}
	if okErr != nil {
		t.Fatalf("live member err = %v", okErr)
	}
}
