package qcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errShareable = errors.New("shareable outcome")

func testFlight() *Flight {
	return NewFlight(func(err error) bool { return errors.Is(err, errShareable) })
}

func fkey(s string) ResultKey { return ResultKey{Engine: s} }

func TestFlightCoalescesConcurrentCallers(t *testing.T) {
	f := testFlight()
	var execs atomic.Int64
	enter := make(chan struct{})
	release := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([]int, followers+1)
	coalesced := make([]bool, followers+1)
	leaderIn := sync.OnceFunc(func() { close(enter) })
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, c, _ := f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
				execs.Add(1)
				leaderIn()
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = v.(int)
			coalesced[i] = c
		}(i)
	}
	<-enter // leader is inside fn; wait for followers to pile up
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times", got)
	}
	nCoalesced := 0
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
		if coalesced[i] {
			nCoalesced++
		}
	}
	if nCoalesced != followers {
		t.Fatalf("%d coalesced, want %d", nCoalesced, followers)
	}
}

func TestFlightSharesClassifiedErrors(t *testing.T) {
	f := testFlight()
	var execs atomic.Int64
	enter := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err, _, _ := f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
			execs.Add(1)
			close(enter)
			<-release
			return nil, errShareable
		})
		if !errors.Is(err, errShareable) {
			t.Errorf("leader err %v", err)
		}
	}()
	<-enter
	go func() {
		defer wg.Done()
		_, err, c, _ := f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
			execs.Add(1)
			return nil, nil
		})
		if !errors.Is(err, errShareable) || !c {
			t.Errorf("follower err=%v coalesced=%v", err, c)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("shareable error recomputed: %d execs", execs.Load())
	}
}

func TestFlightCanceledLeaderDoesNotPoisonFollowers(t *testing.T) {
	f := testFlight()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var execs atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _, _ := f.Do(leaderCtx, fkey("k"), "rid", func() (any, error) {
			execs.Add(1)
			close(leaderIn)
			<-leaderCtx.Done() // a canceled computation reports the ctx error
			return nil, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err %v", err)
		}
	}()
	<-leaderIn

	wg.Add(1)
	var followerErr error
	var followerVal any
	go func() {
		defer wg.Done()
		followerVal, followerErr, _, _ = f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
			execs.Add(1)
			return "recomputed", nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // follower is waiting on the leader
	cancelLeader()
	wg.Wait()

	if followerErr != nil || followerVal != "recomputed" {
		t.Fatalf("follower got (%v, %v) — poisoned by canceled leader", followerVal, followerErr)
	}
	if execs.Load() != 2 {
		t.Fatalf("execs = %d, want 2 (leader + promoted follower)", execs.Load())
	}
}

func TestFlightFollowerOwnCancellation(t *testing.T) {
	f := testFlight()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
		close(leaderIn)
		<-release
		return 1, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _, _ := f.Do(ctx, fkey("k"), "rid", func() (any, error) { return 2, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err %v", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("follower did not honor its own cancellation")
	}
	close(release)
}

func TestFlightPanickingLeader(t *testing.T) {
	f := testFlight()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Errorf("panic did not propagate to leader")
			}
		}()
		f.Do(context.Background(), fkey("k"), "rid", func() (any, error) {
			close(leaderIn)
			<-release
			panic("boom")
		})
	}()
	<-leaderIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _, _ := f.Do(context.Background(), fkey("k"), "rid", func() (any, error) { return "ok", nil })
		if err != nil || v != "ok" {
			t.Errorf("follower after panic: (%v, %v)", v, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
}
