package qcache

import (
	"context"
	"sync"
	"testing"
	"time"

	"fannr/internal/core"
)

// TestFlightFollowerLearnsLeaderID pins the attribution fix: a coalesced
// follower gets the request id of the leader whose computation served it.
func TestFlightFollowerLearnsLeaderID(t *testing.T) {
	f := NewFlight(nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, coalesced, leader := f.Do(context.Background(), fkey("k"), "leader-1", func() (any, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
		if v != 42 || err != nil || coalesced {
			t.Errorf("leader outcome: v=%v err=%v coalesced=%v", v, err, coalesced)
		}
		if leader != "leader-1" {
			t.Errorf("leader sees leader id %q, want its own", leader)
		}
	}()
	<-leaderIn
	var followerLeader string
	var followerCoalesced bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, followerCoalesced, followerLeader = f.Do(context.Background(), fkey("k"), "follower-2", func() (any, error) {
			t.Error("follower ran the computation")
			return nil, nil
		})
	}()
	// Give the follower time to park on the leader's call before release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if !followerCoalesced {
		t.Fatal("follower was not coalesced")
	}
	if followerLeader != "leader-1" {
		t.Fatalf("follower learned leader id %q, want leader-1", followerLeader)
	}
}

// TestBatcherMembersLearnLeaderAndSize pins batch attribution: every
// member of a flush learns the opener's request id and the flush size.
func TestBatcherMembersLearnLeaderAndSize(t *testing.T) {
	b := NewBatcher(20*time.Millisecond, 8, func(string) EngineSource { return &fakeSource{} }, nil)
	const n = 3
	infos := make([]BatchInfo, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger submissions so member 0 deterministically opens the
			// window (the window is far longer than the stagger).
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			var err error
			_, infos[i], err = b.Do(context.Background(), bkey("E", 1), ids[i], func(core.GPhi) ([]core.Answer, error) {
				return []core.Answer{{P: 1}}, nil
			})
			if err != nil {
				t.Errorf("member %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i, info := range infos {
		if info.Size != n {
			t.Errorf("member %d saw flush size %d, want %d", i, info.Size, n)
		}
		if info.Leader != ids[0] {
			t.Errorf("member %d saw leader %q, want %q", i, info.Leader, ids[0])
		}
	}
}

var ids = []string{"req-a", "req-b", "req-c"}
