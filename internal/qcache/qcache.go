package qcache

import (
	"sync/atomic"
	"time"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/sp"
)

// Config sizes a Cache.
type Config struct {
	// MaxEntries bounds the total entry count across both layers
	// (results and neighbor lists share the LRU). <= 0 disables the
	// cache: New returns nil, and a nil *Cache is safe everywhere.
	MaxEntries int
	// TTL expires entries this long after their last write; 0 means
	// entries live until evicted. The indexes behind a cache are
	// immutable in-process, so TTL exists for operators who update the
	// world out-of-band and accept bounded staleness.
	TTL time.Duration
	// Now injects a clock for TTL tests; nil means time.Now.
	Now func() time.Time
}

// Cache is the two-layer semantic query cache. The result layer stores
// final answers under fully specified query keys (exact hits); the list
// layer stores per-candidate sorted neighbor lists under (engine, Q, p),
// which — because every g_φ is a fold over the kNN prefix — answer any
// φ'/k' whose k' fits the cached list (subsumption hits). All methods
// are safe for concurrent use and safe on a nil receiver (disabled).
type Cache struct {
	perShard int
	ttl      time.Duration
	now      func() time.Time
	shards   [numShards]shard

	hitsExact   atomic.Int64
	hitsSubsume atomic.Int64
	missesExact atomic.Int64
	missesList  atomic.Int64
	evictions   atomic.Int64
	entries     atomic.Int64
	bytes       atomic.Int64
}

// New builds a Cache, or returns nil when cfg disables caching.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		return nil
	}
	per := (cfg.MaxEntries + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	now := cfg.Now
	if now == nil {
		now = timeNow
	}
	c := &Cache{perShard: per, ttl: cfg.TTL, now: now}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*entry)
	}
	return c
}

// resultVal is the stored shape of the result layer: the answers only.
// Engine name, degraded flag and latency are request properties the
// server re-derives per response, so a cached result never replays a
// stale degradation verdict.
type resultVal struct {
	answers []core.Answer
}

// listVal is the stored shape of the list layer. complete means the
// engine returned fewer neighbors than asked, i.e. the list holds every
// member of Q reachable from p — it then answers any k.
type listVal struct {
	nbrs     []sp.Neighbor
	complete bool
}

// GetResult returns the cached answers for an exactly matching query.
// The returned slice is shared — callers must treat it as read-only.
func (c *Cache) GetResult(k ResultKey) ([]core.Answer, bool) {
	if c == nil {
		return nil, false
	}
	v, ok := c.get(resultKeyOf(k))
	if !ok {
		c.missesExact.Add(1)
		return nil, false
	}
	c.hitsExact.Add(1)
	return v.(resultVal).answers, true
}

// PutResult stores answers under k. The answers are deep-copied so later
// caller mutation cannot corrupt the cache.
func (c *Cache) PutResult(k ResultKey, answers []core.Answer) {
	if c == nil {
		return
	}
	cp := make([]core.Answer, len(answers))
	size := int64(64)
	for i, a := range answers {
		cp[i] = a
		cp[i].Subset = append([]graph.NodeID(nil), a.Subset...)
		size += 32 + 8*int64(len(a.Subset))
	}
	c.put(resultKeyOf(k), resultVal{answers: cp}, size, nil)
}

// GetList returns a cached neighbor list for candidate p that can answer
// a k-prefix fold: either it holds ≥ k neighbors (the k-prefix is
// returned) or it is complete (every reachable member of Q — possibly
// fewer than k — is returned). ok=false means the cache cannot answer
// this k and the caller should compute and PutList.
func (c *Cache) GetList(engine string, q Fingerprint, p graph.NodeID, k int) ([]sp.Neighbor, bool) {
	if c == nil {
		return nil, false
	}
	v, ok := c.get(listKeyOf(engine, q, p))
	if ok {
		lv := v.(listVal)
		if len(lv.nbrs) >= k {
			c.hitsSubsume.Add(1)
			return lv.nbrs[:k], true
		}
		if lv.complete {
			c.hitsSubsume.Add(1)
			return lv.nbrs, true
		}
	}
	c.missesList.Add(1)
	return nil, false
}

// PutList stores the sorted neighbor list computed for (engine, q, p).
// complete marks lists that exhausted Q's reachable members. A resident
// list that already answers at least as much (longer, or complete) is
// kept — two racing fills can never downgrade the entry.
func (c *Cache) PutList(engine string, q Fingerprint, p graph.NodeID, nbrs []sp.Neighbor, complete bool) {
	if c == nil {
		return
	}
	cp := append([]sp.Neighbor(nil), nbrs...)
	size := int64(48) + 16*int64(len(cp))
	c.put(listKeyOf(engine, q, p), listVal{nbrs: cp, complete: complete}, size,
		func(old any) bool {
			ov := old.(listVal)
			if ov.complete {
				return true
			}
			return !complete && len(ov.nbrs) >= len(cp)
		})
}

// Metrics is an atomic snapshot of the cache counters and gauges.
type Metrics struct {
	HitsExact   int64
	HitsSubsume int64
	MissesExact int64
	MissesList  int64
	Evictions   int64
	Entries     int64
	Bytes       int64
}

// Metrics snapshots the counters; zero-valued on a nil cache.
func (c *Cache) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	return Metrics{
		HitsExact:   c.hitsExact.Load(),
		HitsSubsume: c.hitsSubsume.Load(),
		MissesExact: c.missesExact.Load(),
		MissesList:  c.missesList.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     c.entries.Load(),
		Bytes:       c.bytes.Load(),
	}
}
