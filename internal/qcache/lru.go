package qcache

import (
	"sync"
	"time"
)

// numShards spreads lock contention; must stay a power of two for
// shardOf's mask.
const numShards = 16

// entry is one LRU node. Entries form a doubly linked list per shard
// with head = most recently used.
type entry struct {
	key        cacheKey
	prev, next *entry
	size       int64
	expires    int64 // unix nanos; 0 = never
	val        any
}

// shard is one lock domain: a map for lookup plus an intrusive LRU list
// for eviction order.
type shard struct {
	mu         sync.Mutex
	entries    map[cacheKey]*entry
	head, tail *entry
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// removeLocked drops e from the shard; the caller holds s.mu and
// accounts the cache-level gauges.
func (s *shard) removeLocked(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
}

// get returns the live value under k, refreshing recency. Expired
// entries are removed and miss.
func (c *Cache) get(k cacheKey) (any, bool) {
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil {
		return nil, false
	}
	if e.expires != 0 && c.now().UnixNano() > e.expires {
		s.removeLocked(e)
		c.entries.Add(-1)
		c.bytes.Add(-e.size)
		return nil, false
	}
	s.moveToFront(e)
	return e.val, true
}

// put inserts or replaces the value under k. keep, when non-nil, is
// consulted under the shard lock with the existing live value: returning
// true aborts the write (the resident value is better — e.g. a longer
// neighbor list racing with a shorter one).
func (c *Cache) put(k cacheKey, val any, size int64, keep func(old any) bool) {
	s := &c.shards[shardOf(k)]
	now := c.now().UnixNano()
	var expires int64
	if c.ttl > 0 {
		expires = now + int64(c.ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[k]; e != nil {
		expired := e.expires != 0 && now > e.expires
		if !expired && keep != nil && keep(e.val) {
			s.moveToFront(e)
			return
		}
		c.bytes.Add(size - e.size)
		e.val, e.size, e.expires = val, size, expires
		s.moveToFront(e)
		return
	}
	e := &entry{key: k, val: val, size: size, expires: expires}
	s.entries[k] = e
	s.pushFront(e)
	c.entries.Add(1)
	c.bytes.Add(size)
	for len(s.entries) > c.perShard {
		victim := s.tail
		s.removeLocked(victim)
		c.entries.Add(-1)
		c.bytes.Add(-victim.size)
		c.evictions.Add(1)
	}
}

// Purge drops every entry — the manual invalidation hook. The indexes a
// cache fronts are immutable for the life of the process, so purging is
// only needed when an operator swaps datasets in tests or tooling.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := int64(len(s.entries))
		var freed int64
		for _, e := range s.entries {
			freed += e.size
		}
		s.entries = make(map[cacheKey]*entry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
		c.entries.Add(-n)
		c.bytes.Add(-freed)
	}
}

// timeNow is the default clock.
func timeNow() time.Time { return time.Now() }
