package binio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST1\n")
	w.I64(-42)
	w.I32(7)
	w.F64(math.Pi)
	w.I32s([]int32{1, -2, 3})
	w.F64s([]float64{0.5, math.Inf(1)})
	w.I32s(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("TEST1\n")
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.I32(); got != 7 {
		t.Fatalf("I32 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	is := r.I32s()
	if len(is) != 3 || is[0] != 1 || is[1] != -2 || is[2] != 3 {
		t.Fatalf("I32s = %v", is)
	}
	fs := r.F64s()
	if len(fs) != 2 || fs[0] != 0.5 || !math.IsInf(fs[1], 1) {
		t.Fatalf("F64s = %v", fs)
	}
	if got := r.I32s(); got != nil {
		t.Fatalf("empty I32s = %v", got)
	}
	r.Footer()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFooterDetectsBitRot flips each payload byte in turn; the CRC32
// footer must reject every corruption, and a tampered footer itself must
// be rejected too.
func TestFooterDetectsBitRot(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("ROT1\n")
	w.I32s([]int32{1, 2, 3})
	w.F64(math.Pi)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	readAll := func(data []byte) error {
		r := NewReader(bytes.NewReader(data))
		r.Magic("ROT1\n")
		r.I32s()
		r.F64()
		r.Footer()
		return r.Err()
	}
	if err := readAll(buf.Bytes()); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	for i := range buf.Bytes() {
		tampered := append([]byte(nil), buf.Bytes()...)
		tampered[i] ^= 0x40
		if readAll(tampered) == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	if readAll(buf.Bytes()[:buf.Len()-1]) == nil {
		t.Fatal("truncated footer accepted")
	}
}

// TestFlushSealsOnce pins that a second Flush only flushes — it must not
// append a second footer.
func TestFlushSealsOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I32(9)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	once := buf.Len()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != once {
		t.Fatalf("second Flush grew the stream from %d to %d bytes", once, buf.Len())
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("AAAA")
	_ = w.Flush()
	r := NewReader(&buf)
	r.Magic("BBBB")
	if r.Err() == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I32s([]int32{1, 2, 3, 4, 5})
	_ = w.Flush()
	// Cut into the payload itself (the stream ends in a 4-byte footer).
	trunc := buf.Bytes()[:buf.Len()-7]
	r := NewReader(bytes.NewReader(trunc))
	r.I32s()
	if r.Err() == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(int64(MaxSliceLen) + 1)
	_ = w.Flush()
	r := NewReader(&buf)
	r.Len()
	if r.Err() == nil {
		t.Fatal("implausible length accepted")
	}
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2)
	w2.I64(-1)
	_ = w2.Flush()
	r2 := NewReader(&buf2)
	r2.Len()
	if r2.Err() == nil {
		t.Fatal("negative length accepted")
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.I64() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("empty read should fail")
	}
	r.I32()
	r.F64s()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

// Property: arbitrary slices round-trip bit-exactly.
func TestSliceRoundTripProperty(t *testing.T) {
	f := func(is []int32, fs []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.I32s(is)
		w.F64s(fs)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		gi := r.I32s()
		gf := r.F64s()
		if r.Err() != nil || len(gi) != len(is) || len(gf) != len(fs) {
			return false
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		for i := range fs {
			if math.Float64bits(gf[i]) != math.Float64bits(fs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
