package binio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// On-disk format v4: a section file is a self-describing container whose
// payload arrays sit at 64-byte-aligned offsets so a loader can mmap the
// file read-only and point []int32/[]int64/[]float64 views straight at
// the page cache — no decode, no copy, no GC pressure, and the index is
// query-ready in the time it takes to validate a few kilobytes of
// metadata.
//
//	magic           len(magic) bytes, e.g. "FANNRPHL4\n"
//	headerLen       int64
//	header payload  headerLen bytes of format-specific little-endian values
//	sectionCount    int64
//	section table   sectionCount × 24 bytes: {off int64, count int64,
//	                 kind uint32, crc uint32}
//	table CRC32     uint32 over every byte above
//	padding         zero bytes to the first 64-byte boundary
//	sections        raw little-endian arrays, each 64-byte-aligned,
//	                 zero-padded between sections
//
// The table CRC seals the metadata (magic through table), so a forged or
// bit-rotted section table is rejected before any offset is trusted; the
// per-section CRCs seal the payloads and are verified on heap loads (and
// on mmap loads when LoadOptions.Verify is set — by default an mmap load
// trusts the kernel page cache rather than touching every page of a
// beyond-RAM file).
const (
	// Align is the section alignment: 64 bytes covers every element type
	// this package stores and matches a cache line, and any file offset
	// that is 64-byte-aligned is also 8-byte-aligned inside a page-aligned
	// mmap, which is what unsafe.Slice needs for float64/int64 views.
	Align = 64

	// Section element kinds.
	KindI32 = uint32(1)
	KindI64 = uint32(2)
	KindF64 = uint32(3)

	tableEntrySize = 24
)

func kindSize(kind uint32) int {
	switch kind {
	case KindI32:
		return 4
	case KindI64, KindF64:
		return 8
	}
	return 0
}

// MaxSectionCount bounds the number of sections a table may declare; real
// formats use a handful, so anything large is a forged header.
const MaxSectionCount = 1 << 10

// MaxHeaderLen bounds the header payload a section file may declare.
const MaxHeaderLen = 1 << 20

// SectionWriter assembles a v4 section file. Sections are referenced, not
// copied, so staging a multi-gigabyte index costs no extra memory; the
// whole file is emitted in one forward pass by WriteTo because every
// offset is computable up front.
type SectionWriter struct {
	magic    string
	header   []byte
	sections []section
}

type section struct {
	kind uint32
	i32  []int32
	i64  []int64
	f64  []float64
}

func (s *section) count() int64 {
	switch s.kind {
	case KindI32:
		return int64(len(s.i32))
	case KindI64:
		return int64(len(s.i64))
	default:
		return int64(len(s.f64))
	}
}

// NewSectionWriter starts a v4 file with the given magic tag.
func NewSectionWriter(magic string) *SectionWriter {
	return &SectionWriter{magic: magic}
}

// HeaderI64 appends one int64 to the header payload. Headers carry the
// handful of scalars (node counts, options) a format needs before its
// arrays.
func (w *SectionWriter) HeaderI64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.header = append(w.header, b[:]...)
}

// I32Section appends an int32 array section. The slice is referenced, not
// copied; it must not change before WriteTo returns.
func (w *SectionWriter) I32Section(vs []int32) {
	w.sections = append(w.sections, section{kind: KindI32, i32: vs})
}

// I64Section appends an int64 array section.
func (w *SectionWriter) I64Section(vs []int64) {
	w.sections = append(w.sections, section{kind: KindI64, i64: vs})
}

// F64Section appends a float64 array section.
func (w *SectionWriter) F64Section(vs []float64) {
	w.sections = append(w.sections, section{kind: KindF64, f64: vs})
}

// alignUp rounds n up to the next multiple of Align.
func alignUp(n int64) int64 { return (n + Align - 1) &^ (Align - 1) }

// WriteTo emits the complete file. It returns the number of bytes
// written.
func (w *SectionWriter) WriteTo(out io.Writer) (int64, error) {
	metaLen := int64(len(w.magic)) + 8 + int64(len(w.header)) + 8 +
		int64(len(w.sections))*tableEntrySize + 4
	// Lay the sections out back to back, each aligned up.
	offs := make([]int64, len(w.sections))
	crcs := make([]uint32, len(w.sections))
	pos := alignUp(metaLen)
	for i := range w.sections {
		s := &w.sections[i]
		offs[i] = pos
		crcs[i] = s.crc()
		pos = alignUp(pos + s.count()*int64(kindSize(s.kind)))
	}

	meta := make([]byte, 0, metaLen)
	meta = append(meta, w.magic...)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(w.header)))
	meta = append(meta, w.header...)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(w.sections)))
	for i := range w.sections {
		s := &w.sections[i]
		meta = binary.LittleEndian.AppendUint64(meta, uint64(offs[i]))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(s.count()))
		meta = binary.LittleEndian.AppendUint32(meta, s.kind)
		meta = binary.LittleEndian.AppendUint32(meta, crcs[i])
	}
	meta = binary.LittleEndian.AppendUint32(meta, crc32.ChecksumIEEE(meta))

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(meta); err != nil {
		return written, err
	}
	var pad [Align]byte
	padTo := func(target int64) error {
		for written < target {
			n := target - written
			if n > Align {
				n = Align
			}
			if err := emit(pad[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range w.sections {
		if err := padTo(offs[i]); err != nil {
			return written, err
		}
		if err := w.sections[i].encode(emit); err != nil {
			return written, err
		}
	}
	return written, nil
}

// encodeChunk is the staging buffer size for section encoding: big enough
// to amortize Write calls, small enough to stay cache-resident.
const encodeChunk = 64 * 1024

// encode streams the section's little-endian bytes through emit in
// bounded chunks.
func (s *section) encode(emit func([]byte) error) error {
	buf := make([]byte, 0, encodeChunk)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := emit(buf)
		buf = buf[:0]
		return err
	}
	switch s.kind {
	case KindI32:
		for _, v := range s.i32 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			if len(buf) >= encodeChunk {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	case KindI64:
		for _, v := range s.i64 {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			if len(buf) >= encodeChunk {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	default:
		for _, v := range s.f64 {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			if len(buf) >= encodeChunk {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// crc computes the CRC32 of the section's encoded bytes.
func (s *section) crc() uint32 {
	var c uint32
	_ = s.encode(func(b []byte) error {
		c = crc32.Update(c, crc32.IEEETable, b)
		return nil
	})
	return c
}

// sectionMeta is one parsed table entry.
type sectionMeta struct {
	off   int64
	count int64
	kind  uint32
	crc   uint32
}

// SectionFile is a parsed v4 container. Its accessors hand out zero-copy
// views into the backing bytes whenever the platform allows (little-endian
// host, aligned data) and silently fall back to heap-decoded copies
// otherwise, so callers never branch on platform.
type SectionFile struct {
	data     []byte
	header   []byte
	sections []sectionMeta
	mapping  *Mapping // non-nil when data is an mmap'd file
}

// ParseSections validates the metadata of a v4 byte stream: magic, header
// length, section table bounds (in-file, aligned, ascending,
// non-overlapping), and the table CRC that seals all of it. Section
// payload CRCs are NOT verified here — call VerifySections for that — so
// parsing an mmap'd beyond-RAM file touches only the metadata pages.
func ParseSections(data []byte, magic string) (*SectionFile, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("binio: %d-byte stream is shorter than the %q magic", len(data), magic)
	}
	if got := string(data[:len(magic)]); got != magic {
		return nil, magicError(got, magic)
	}
	pos := int64(len(magic))
	fileLen := int64(len(data))
	readI64 := func() (int64, bool) {
		if pos+8 > fileLen {
			return 0, false
		}
		v := int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		return v, true
	}
	headerLen, ok := readI64()
	if !ok || headerLen < 0 || headerLen > MaxHeaderLen {
		return nil, fmt.Errorf("binio: implausible header length %d", headerLen)
	}
	if pos+headerLen > fileLen {
		return nil, fmt.Errorf("binio: %d-byte header extends past the %d-byte file", headerLen, fileLen)
	}
	header := data[pos : pos+headerLen]
	pos += headerLen
	count, ok := readI64()
	if !ok || count < 0 || count > MaxSectionCount {
		return nil, fmt.Errorf("binio: implausible section count %d", count)
	}
	if pos+count*tableEntrySize+4 > fileLen {
		return nil, fmt.Errorf("binio: section table truncated: %d entries need %d bytes, file has %d past the header",
			count, count*tableEntrySize+4, fileLen-pos)
	}
	sections := make([]sectionMeta, count)
	prevEnd := alignUp(pos + count*tableEntrySize + 4)
	for i := range sections {
		s := &sections[i]
		s.off = int64(binary.LittleEndian.Uint64(data[pos:]))
		s.count = int64(binary.LittleEndian.Uint64(data[pos+8:]))
		s.kind = binary.LittleEndian.Uint32(data[pos+16:])
		s.crc = binary.LittleEndian.Uint32(data[pos+20:])
		pos += tableEntrySize
		esz := kindSize(s.kind)
		if esz == 0 {
			return nil, fmt.Errorf("binio: section %d has unknown element kind %d", i, s.kind)
		}
		if s.off%Align != 0 {
			return nil, fmt.Errorf("binio: section %d offset %d is not %d-byte aligned", i, s.off, Align)
		}
		if s.count < 0 || s.count > MaxSliceLen {
			return nil, fmt.Errorf("binio: section %d has implausible length %d", i, s.count)
		}
		if s.off < prevEnd {
			return nil, fmt.Errorf("binio: section %d at offset %d overlaps the bytes before it (first free offset %d)",
				i, s.off, prevEnd)
		}
		end := s.off + s.count*int64(esz)
		if end > fileLen {
			return nil, fmt.Errorf("binio: section %d claims bytes [%d,%d) beyond the %d-byte file",
				i, s.off, end, fileLen)
		}
		prevEnd = s.off + s.count*int64(esz)
	}
	// The table CRC seals everything parsed above; verify it last so the
	// structural errors above stay descriptive for honest corruption.
	want := binary.LittleEndian.Uint32(data[pos:])
	if got := crc32.ChecksumIEEE(data[:pos]); got != want {
		return nil, fmt.Errorf("binio: section table checksum mismatch: table carries %#08x, metadata hashes to %#08x", want, got)
	}
	return &SectionFile{data: data, header: header, sections: sections}, nil
}

// OpenSectionFile maps (or, when mmap is unavailable or mapped=false,
// reads) the file at path and parses its section table. Close releases
// the mapping.
func OpenSectionFile(path, magic string, mapped bool) (*SectionFile, error) {
	if !mapped {
		data, err := readFileAligned(path)
		if err != nil {
			return nil, err
		}
		return ParseSections(data, magic)
	}
	m, err := MapFile(path)
	if err != nil {
		return nil, err
	}
	sf, err := ParseSections(m.Data, magic)
	if err != nil {
		m.Close()
		return nil, err
	}
	sf.mapping = m
	return sf, nil
}

// Close releases the mmap mapping, if any. Views handed out by the
// accessors become invalid; the caller must not use them afterwards.
func (f *SectionFile) Close() error {
	if f.mapping == nil {
		return nil
	}
	m := f.mapping
	f.mapping = nil
	f.data = nil
	return m.Close()
}

// Mapped reports whether the backing bytes are an mmap'd file rather
// than heap memory.
func (f *SectionFile) Mapped() bool { return f.mapping != nil }

// MappedBytes returns the size of the mmap'd region backing this file, or
// 0 for heap-backed files.
func (f *SectionFile) MappedBytes() int64 {
	if f.mapping == nil {
		return 0
	}
	return int64(len(f.data))
}

// MappedData returns the raw mapped byte range backing this file, or nil
// for heap-backed files. The lifecycle layer registers this range so a
// page-in fault (SIGBUS from a truncated or bit-rotted file) can be
// attributed to the index that owns the mapping rather than to engine
// code. Callers must not write through or retain the slice past Close.
func (f *SectionFile) MappedData() []byte {
	if f.mapping == nil {
		return nil
	}
	return f.data
}

// Header returns a cursor over the header payload.
func (f *SectionFile) Header() *HeaderReader { return &HeaderReader{data: f.header} }

// NumSections returns the number of sections in the table.
func (f *SectionFile) NumSections() int { return len(f.sections) }

// VerifySections checks every section payload against its table CRC,
// reading the full file once. Heap loaders call it unconditionally; mmap
// loaders call it only when asked, because it faults in every page.
func (f *SectionFile) VerifySections() error {
	for i := range f.sections {
		s := &f.sections[i]
		raw := f.data[s.off : s.off+s.count*int64(kindSize(s.kind))]
		if got := crc32.ChecksumIEEE(raw); got != s.crc {
			return fmt.Errorf("binio: section %d checksum mismatch: table carries %#08x, content hashes to %#08x", i, s.crc, got)
		}
	}
	return nil
}

func (f *SectionFile) section(i int, kind uint32) (*sectionMeta, []byte, error) {
	if i < 0 || i >= len(f.sections) {
		return nil, nil, fmt.Errorf("binio: section %d out of range (file has %d)", i, len(f.sections))
	}
	s := &f.sections[i]
	if s.kind != kind {
		return nil, nil, fmt.Errorf("binio: section %d holds element kind %d, want %d", i, s.kind, kind)
	}
	return s, f.data[s.off : s.off+s.count*int64(kindSize(kind))], nil
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the precondition for pointing typed slices at the raw
// file bytes.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// aligned reports whether b's backing array is aligned for elements of
// size esz.
func aligned(b []byte, esz int) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(esz) == 0
}

// I32 returns section i as []int32 — a zero-copy view when the host is
// little-endian and the bytes are aligned, a decoded heap copy otherwise.
func (f *SectionFile) I32(i int) ([]int32, error) {
	s, raw, err := f.section(i, KindI32)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return nil, nil
	}
	if hostLittleEndian() && aligned(raw, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), s.count), nil
	}
	out := make([]int32, s.count)
	for j := range out {
		out[j] = int32(binary.LittleEndian.Uint32(raw[j*4:]))
	}
	return out, nil
}

// I64 returns section i as []int64, zero-copy when possible.
func (f *SectionFile) I64(i int) ([]int64, error) {
	s, raw, err := f.section(i, KindI64)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return nil, nil
	}
	if hostLittleEndian() && aligned(raw, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), s.count), nil
	}
	out := make([]int64, s.count)
	for j := range out {
		out[j] = int64(binary.LittleEndian.Uint64(raw[j*8:]))
	}
	return out, nil
}

// F64 returns section i as []float64, zero-copy when possible.
func (f *SectionFile) F64(i int) ([]float64, error) {
	s, raw, err := f.section(i, KindF64)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return nil, nil
	}
	if hostLittleEndian() && aligned(raw, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), s.count), nil
	}
	out := make([]float64, s.count)
	for j := range out {
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
	}
	return out, nil
}

// HeaderReader is a bounds-checked cursor over a section file's header
// payload.
type HeaderReader struct {
	data []byte
	pos  int
	err  error
}

// Err returns the first read error (a header shorter than its format
// expects).
func (h *HeaderReader) Err() error { return h.err }

// I64 reads the next int64 of the header, or 0 after an overrun.
func (h *HeaderReader) I64() int64 {
	if h.err != nil {
		return 0
	}
	if h.pos+8 > len(h.data) {
		h.err = fmt.Errorf("binio: header truncated at byte %d of %d", h.pos, len(h.data))
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(h.data[h.pos:]))
	h.pos += 8
	return v
}
