//go:build unix

package binio

import (
	"fmt"
	"os"
	"syscall"
)

// Mapping is a read-only memory-mapped file. Data aliases the kernel page
// cache: loads fault pages in on demand, several processes mapping the
// same index share one physical copy, and a file larger than RAM is
// usable without ever being resident all at once. The pages are mapped
// PROT_READ, so any stray write through a view is a segfault, not silent
// corruption — the immutability contract is enforced by the MMU.
type Mapping struct {
	Data []byte
}

// MapFile maps the file at path read-only. An empty file maps to an
// empty (nil-Data) Mapping, since mmap of length 0 is an error on Linux.
func MapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("binio: %s: %d bytes exceed the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("binio: mmap %s: %w", path, err)
	}
	return &Mapping{Data: data}, nil
}

// Close unmaps the file. All views into Data become invalid.
func (m *Mapping) Close() error {
	if m.Data == nil {
		return nil
	}
	data := m.Data
	m.Data = nil
	return syscall.Munmap(data)
}

// mmapSupported reports whether MapFile performs a true mmap on this
// platform (as opposed to the heap-read fallback).
const mmapSupported = true
