// Package binio provides sticky-error binary readers and writers for the
// index serialization formats of fannr (hub labels, G-tree, contraction
// hierarchies). All values are little-endian; slices are length-prefixed
// with int64 counts validated against a configurable sanity limit so a
// corrupted stream fails fast instead of allocating absurd buffers.
//
// Every stream ends in a CRC32 (IEEE) footer covering all preceding
// bytes: Flush appends it automatically and Footer verifies it, so
// bit-rot in a saved index fails loudly at load time instead of
// corrupting answers.
package binio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// MaxSliceLen bounds any length prefix accepted by a Reader.
const MaxSliceLen = 1 << 31

// maxPrealloc bounds the elements any slice read pre-allocates before
// bytes actually arrive; longer slices grow by append, so a forged
// length prefix hits a read error long before it can demand gigabytes.
const maxPrealloc = 1 << 16

// Writer writes little-endian binary values, remembering the first error.
type Writer struct {
	w      *bufio.Writer
	err    error
	buf    [8]byte
	crc    uint32
	sealed bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Flush appends the CRC32 footer (first call only) and flushes buffered
// output, returning the first error. No values may be written after it.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.sealed {
		w.sealed = true
		binary.LittleEndian.PutUint32(w.buf[:4], w.crc)
		w.write(w.buf[:4])
	}
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	_, w.err = w.w.Write(b)
}

// Magic writes a fixed-length tag.
func (w *Writer) Magic(tag string) { w.write([]byte(tag)) }

// I64 writes an int64.
func (w *Writer) I64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.write(w.buf[:8])
}

// I32 writes an int32.
func (w *Writer) I32(v int32) {
	binary.LittleEndian.PutUint32(w.buf[:4], uint32(v))
	w.write(w.buf[:4])
}

// F64 writes a float64.
func (w *Writer) F64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
	w.write(w.buf[:8])
}

// I32s writes a length-prefixed int32 slice.
func (w *Writer) I32s(vs []int32) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.I32(v)
	}
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader reads little-endian binary values, remembering the first error.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
	crc uint32
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n]
	}
	if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
		r.err = err
		return r.buf[:n]
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, r.buf[:n])
	return r.buf[:n]
}

// Magic consumes and verifies a fixed-length tag. A stream carrying a
// different version of the same index family (say a FANNRPHL2 file fed
// to a FANNRPHL4 reader) fails with a *FormatVersionError naming both
// versions, so callers can attach a "rebuild the index" hint instead of
// an opaque bad-magic message.
func (r *Reader) Magic(tag string) {
	if r.err != nil {
		return
	}
	got := make([]byte, len(tag))
	if _, err := io.ReadFull(r.r, got); err != nil {
		r.err = err
		return
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, got)
	if string(got) != tag {
		r.err = magicError(string(got), tag)
	}
}

// Footer consumes the trailing CRC32 and verifies it against every byte
// read so far. Call it after the last value of a stream; a mismatch
// (bit-rot, truncation at the footer, torn write) becomes the sticky
// error.
func (r *Reader) Footer() {
	if r.err != nil {
		return
	}
	want := r.crc
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.err = fmt.Errorf("binio: reading checksum footer: %w", err)
		return
	}
	if got := binary.LittleEndian.Uint32(b[:]); got != want {
		r.err = fmt.Errorf("binio: checksum mismatch: stream carries %#08x, content hashes to %#08x", binary.LittleEndian.Uint32(b[:]), want)
	}
}

// I64 reads an int64.
func (r *Reader) I64() int64 {
	return int64(binary.LittleEndian.Uint64(r.read(8)))
}

// I32 reads an int32.
func (r *Reader) I32() int32 {
	return int32(binary.LittleEndian.Uint32(r.read(4)))
}

// F64 reads a float64.
func (r *Reader) F64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.read(8)))
}

// Len reads and validates a length prefix.
func (r *Reader) Len() int {
	n := r.I64()
	if r.err == nil && (n < 0 || n > MaxSliceLen) {
		r.err = fmt.Errorf("binio: implausible length %d", n)
		return 0
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed int32 slice (nil when empty). The
// pre-allocation is capped at maxPrealloc elements and the slice grows
// only as bytes actually arrive, so a forged length prefix cannot
// demand gigabytes for a tiny stream.
func (r *Reader) I32s() []int32 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, min(n, maxPrealloc))
	for i := 0; i < n; i++ {
		v := r.I32()
		if r.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// F64s reads a length-prefixed float64 slice (nil when empty), with the
// same bounded pre-allocation as I32s.
func (r *Reader) F64s() []float64 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, min(n, maxPrealloc))
	for i := 0; i < n; i++ {
		v := r.F64()
		if r.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}
