// Package binio provides sticky-error binary readers and writers for the
// index serialization formats of fannr (hub labels, G-tree, contraction
// hierarchies). All values are little-endian; slices are length-prefixed
// with int64 counts validated against a configurable sanity limit so a
// corrupted stream fails fast instead of allocating absurd buffers.
package binio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxSliceLen bounds any length prefix accepted by a Reader.
const MaxSliceLen = 1 << 31

// Writer writes little-endian binary values, remembering the first error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Magic writes a fixed-length tag.
func (w *Writer) Magic(tag string) { w.write([]byte(tag)) }

// I64 writes an int64.
func (w *Writer) I64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.write(w.buf[:8])
}

// I32 writes an int32.
func (w *Writer) I32(v int32) {
	binary.LittleEndian.PutUint32(w.buf[:4], uint32(v))
	w.write(w.buf[:4])
}

// F64 writes a float64.
func (w *Writer) F64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
	w.write(w.buf[:8])
}

// I32s writes a length-prefixed int32 slice.
func (w *Writer) I32s(vs []int32) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.I32(v)
	}
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.I64(int64(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader reads little-endian binary values, remembering the first error.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n]
	}
	if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
		r.err = err
	}
	return r.buf[:n]
}

// Magic consumes and verifies a fixed-length tag.
func (r *Reader) Magic(tag string) {
	if r.err != nil {
		return
	}
	got := make([]byte, len(tag))
	if _, err := io.ReadFull(r.r, got); err != nil {
		r.err = err
		return
	}
	if string(got) != tag {
		r.err = fmt.Errorf("binio: bad magic %q, want %q", got, tag)
	}
}

// I64 reads an int64.
func (r *Reader) I64() int64 {
	return int64(binary.LittleEndian.Uint64(r.read(8)))
}

// I32 reads an int32.
func (r *Reader) I32() int32 {
	return int32(binary.LittleEndian.Uint32(r.read(4)))
}

// F64 reads a float64.
func (r *Reader) F64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.read(8)))
}

// Len reads and validates a length prefix.
func (r *Reader) Len() int {
	n := r.I64()
	if r.err == nil && (n < 0 || n > MaxSliceLen) {
		r.err = fmt.Errorf("binio: implausible length %d", n)
		return 0
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed int32 slice (nil when empty).
func (r *Reader) I32s() []int32 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.I32()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
		if r.err != nil {
			return nil
		}
	}
	return out
}
