package binio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

const testMagic = "FANNRTST4\n"

// buildTestFile writes a three-section file with a two-value header.
func buildTestFile(t testing.TB) ([]byte, []int32, []int64, []float64) {
	t.Helper()
	i32s := []int32{1, -2, 3, 1 << 30}
	i64s := []int64{42, -9, 1 << 60}
	f64s := []float64{0, 1.5, -2.25, 1e300}
	sw := NewSectionWriter(testMagic)
	sw.HeaderI64(7)
	sw.HeaderI64(-13)
	sw.I32Section(i32s)
	sw.I64Section(i64s)
	sw.F64Section(f64s)
	var buf bytes.Buffer
	if _, err := sw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), i32s, i64s, f64s
}

func TestSectionRoundTrip(t *testing.T) {
	data, i32s, i64s, f64s := buildTestFile(t)
	sf, err := ParseSections(data, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.VerifySections(); err != nil {
		t.Fatal(err)
	}
	h := sf.Header()
	if a, b := h.I64(), h.I64(); a != 7 || b != -13 {
		t.Fatalf("header = %d,%d want 7,-13", a, b)
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	if sf.NumSections() != 3 {
		t.Fatalf("NumSections = %d", sf.NumSections())
	}
	g32, err := sf.I32(0)
	if err != nil {
		t.Fatal(err)
	}
	g64, err := sf.I64(1)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := sf.F64(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range i32s {
		if g32[i] != v {
			t.Fatalf("i32[%d] = %d want %d", i, g32[i], v)
		}
	}
	for i, v := range i64s {
		if g64[i] != v {
			t.Fatalf("i64[%d] = %d want %d", i, g64[i], v)
		}
	}
	for i, v := range f64s {
		if gf[i] != v {
			t.Fatalf("f64[%d] = %v want %v", i, gf[i], v)
		}
	}
	// Kind mismatches are type errors, not silent reinterpretation.
	if _, err := sf.F64(0); err == nil {
		t.Fatal("reading an i32 section as f64 succeeded")
	}
	if _, err := sf.I32(5); err == nil {
		t.Fatal("out-of-range section index succeeded")
	}
}

// TestSectionAlignment pins the layout contract: every section offset is
// 64-byte aligned, so an mmap'd (page-aligned) file always yields
// 8-byte-aligned float64/int64 views.
func TestSectionAlignment(t *testing.T) {
	data, _, _, _ := buildTestFile(t)
	sf, err := ParseSections(data, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sf.sections {
		if s.off%Align != 0 {
			t.Fatalf("section %d at offset %d, not %d-aligned", i, s.off, Align)
		}
	}
}

// TestSectionZeroCopy confirms the views alias the backing bytes on
// little-endian hosts (the performance contract mmap loading is built
// on). Skipped on exotic platforms where the decode fallback kicks in.
func TestSectionZeroCopy(t *testing.T) {
	if !hostLittleEndian() {
		t.Skip("big-endian host uses the decode fallback")
	}
	data, _, _, _ := buildTestFile(t)
	// readFileAligned guarantees 8-byte alignment; in-memory test data
	// from bytes.Buffer may not be, so re-stage it aligned.
	aligned := alignedCopy(data)
	sf, err := ParseSections(aligned, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	g32, err := sf.I32(0)
	if err != nil {
		t.Fatal(err)
	}
	base := uintptr(unsafe.Pointer(&aligned[0]))
	p := uintptr(unsafe.Pointer(&g32[0]))
	if p < base || p >= base+uintptr(len(aligned)) {
		t.Fatal("I32 view does not alias the backing buffer (copied?)")
	}
}

func alignedCopy(data []byte) []byte {
	words := make([]uint64, (len(data)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:len(data)]
	copy(buf, data)
	return buf
}

// TestSectionTableCorruptions drives the parser through the forged-table
// matrix: truncations, misaligned offsets, overlapping sections, lengths
// past EOF, unknown kinds, and a flipped table CRC. Every one must fail
// with a descriptive error, never a panic or a silent accept.
func TestSectionTableCorruptions(t *testing.T) {
	data, _, _, _ := buildTestFile(t)
	// Table layout: magic(10) + headerLen(8) + header(16) + count(8) = 42,
	// then 3 × 24-byte entries.
	tableStart := len(testMagic) + 8 + 16 + 8
	entry := func(i int) int { return tableStart + i*tableEntrySize }

	corrupt := func(name string, mutate func(d []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			d := mutate(append([]byte(nil), data...))
			if _, err := ParseSections(d, testMagic); err == nil {
				t.Fatal("corrupted table accepted")
			}
		})
	}
	corrupt("empty", func(d []byte) []byte { return nil })
	corrupt("magic-only", func(d []byte) []byte { return d[:len(testMagic)] })
	corrupt("truncated-table", func(d []byte) []byte { return d[:entry(2)+5] })
	corrupt("truncated-section", func(d []byte) []byte { return d[:len(d)-16] })
	corrupt("misaligned-offset", func(d []byte) []byte {
		off := binary.LittleEndian.Uint64(d[entry(1):])
		binary.LittleEndian.PutUint64(d[entry(1):], off+4)
		return d
	})
	corrupt("overlapping-sections", func(d []byte) []byte {
		// Point section 1 at section 0's offset.
		off0 := binary.LittleEndian.Uint64(d[entry(0):])
		binary.LittleEndian.PutUint64(d[entry(1):], off0)
		return d
	})
	corrupt("section-before-table", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[entry(0):], 0)
		return d
	})
	corrupt("forged-length", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[entry(2)+8:], 1<<40)
		return d
	})
	corrupt("negative-length", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[entry(0)+8:], ^uint64(0))
		return d
	})
	corrupt("unknown-kind", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[entry(0)+16:], 99)
		return d
	})
	corrupt("forged-section-count", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[tableStart-8:], 1<<20)
		return d
	})
	corrupt("forged-header-len", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[len(testMagic):], 1<<30)
		return d
	})
	corrupt("table-crc-flip", func(d []byte) []byte {
		d[entry(3)] ^= 0x01 // the CRC sits right after the last entry
		return d
	})
	// Metadata bit-rot anywhere in the sealed region must be caught by
	// the table CRC even when the forged value parses cleanly.
	corrupt("header-bit-rot", func(d []byte) []byte {
		d[len(testMagic)+8] ^= 0x80
		return d
	})
}

// TestSectionPayloadBitRot flips bits across the payload region;
// VerifySections must reject every one even though ParseSections (which
// only seals metadata) accepts them.
func TestSectionPayloadBitRot(t *testing.T) {
	data, _, _, _ := buildTestFile(t)
	sf, err := ParseSections(data, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	payloadStart := int(sf.sections[0].off)
	for i := payloadStart; i < len(data); i += 7 {
		// Skip the zero padding between sections: it is not covered by any
		// section CRC (and never read by a loader).
		inSection := false
		for _, s := range sf.sections {
			if int64(i) >= s.off && int64(i) < s.off+s.count*int64(kindSize(s.kind)) {
				inSection = true
				break
			}
		}
		if !inSection {
			continue
		}
		rotted := append([]byte(nil), data...)
		rotted[i] ^= 0x10
		rsf, err := ParseSections(rotted, testMagic)
		if err != nil {
			t.Fatalf("metadata parse failed for payload flip at %d: %v", i, err)
		}
		if err := rsf.VerifySections(); err == nil {
			t.Fatalf("payload bit flip at offset %d not caught", i)
		}
	}
}

func TestOpenSectionFileMmapAndHeap(t *testing.T) {
	data, i32s, _, _ := buildTestFile(t)
	path := filepath.Join(t.TempDir(), "idx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mapped := range []bool{true, false} {
		sf, err := OpenSectionFile(path, testMagic, mapped)
		if err != nil {
			t.Fatalf("mapped=%v: %v", mapped, err)
		}
		if mapped && mmapSupported && !sf.Mapped() {
			t.Fatal("mmap requested and supported but file not mapped")
		}
		if !mapped && sf.Mapped() {
			t.Fatal("heap open reported as mapped")
		}
		got, err := sf.I32(0)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range i32s {
			if got[i] != v {
				t.Fatalf("mapped=%v i32[%d] = %d want %d", mapped, i, got[i], v)
			}
		}
		if err := sf.VerifySections(); err != nil {
			t.Fatal(err)
		}
		if err := sf.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenSectionFile(filepath.Join(t.TempDir(), "absent"), testMagic, true); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
}

// TestMagicVersionError drives every historical magic through a v4
// reader and a v4 stream through older readers: same-family version
// skew must surface as *FormatVersionError naming both versions, while
// unrelated bytes stay a plain bad-magic error.
func TestMagicVersionError(t *testing.T) {
	cases := []struct {
		name      string
		got, want string
		found     int
		wantVer   int
	}{
		{"phl-v1-to-v4", "FANNRPHL1\n", "FANNRPHL4\n", 1, 4},
		{"phl-v2-to-v4", "FANNRPHL2\n", "FANNRPHL4\n", 2, 4},
		{"phl-v3-to-v4", "FANNRPHL3\n", "FANNRPHL4\n", 3, 4},
		{"phl-v4-to-v3", "FANNRPHL4\n", "FANNRPHL3\n", 4, 3},
		{"gt-v2-to-v4", "FANNRGT2\n", "FANNRGT4\n", 2, 4},
		{"gt-v3-to-v4", "FANNRGT3\n", "FANNRGT4\n", 3, 4},
		{"ch-v1-to-v2", "FANNRCH1\n", "FANNRCH2\n", 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader([]byte(tc.got + "trailing")))
			r.Magic(tc.want)
			var ve *FormatVersionError
			if !errors.As(r.Err(), &ve) {
				t.Fatalf("err = %v, want FormatVersionError", r.Err())
			}
			if ve.Found != tc.found || ve.Want != tc.wantVer {
				t.Fatalf("versions = found v%d want v%d; expected found v%d want v%d",
					ve.Found, ve.Want, tc.found, tc.wantVer)
			}
			// ParseSections must classify version skew identically.
			if _, err := ParseSections([]byte(tc.got+"padpadpad"), tc.want); !errors.As(err, &ve) {
				t.Fatalf("ParseSections err = %v, want FormatVersionError", err)
			}
		})
	}
	t.Run("unrelated-garbage", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte("GARBAGE890")))
		r.Magic("FANNRPHL4\n")
		var ve *FormatVersionError
		if errors.As(r.Err(), &ve) {
			t.Fatalf("garbage classified as version skew: %v", r.Err())
		}
		if r.Err() == nil {
			t.Fatal("garbage accepted")
		}
	})
}
