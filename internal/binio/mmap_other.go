//go:build !unix

package binio

import "os"

// Mapping is the portable fallback for platforms without mmap: the file
// is read into heap memory. The API is identical, so callers never
// branch on platform; only the sharing and beyond-RAM properties differ.
type Mapping struct {
	Data []byte
}

// MapFile reads the file at path into memory.
func MapFile(path string) (*Mapping, error) {
	data, err := readFileAligned(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{Data: data}, nil
}

// Close releases the buffer.
func (m *Mapping) Close() error {
	m.Data = nil
	return nil
}

// mmapSupported reports whether MapFile performs a true mmap on this
// platform.
const mmapSupported = false
