package binio

import (
	"fmt"
	"os"
	"time"
)

// Provenance identifies the on-disk artifact behind a loaded index —
// what operators need when a quarantine or version skew fires: which
// file, how big, which format generation, and when it last changed
// (mtime moving under a live mapping is the classic torn-rotation
// signature).
type Provenance struct {
	Path    string
	Bytes   int64
	ModTime time.Time
	// Family and Version decompose the file's magic tag ("FANNRPHL", 4).
	// Both are zero when the file is too short or not a section file.
	Family  string
	Version int
}

// String renders the provenance the way the server's startup log and
// /meta want it: path, size, format, mtime.
func (p Provenance) String() string {
	format := "unknown"
	if p.Family != "" {
		format = fmt.Sprintf("%s v%d", p.Family, p.Version)
	}
	return fmt.Sprintf("%s (%d bytes, %s, mtime %s)",
		p.Path, p.Bytes, format, p.ModTime.UTC().Format(time.RFC3339))
}

// FileProvenance stats path and sniffs its magic tag. It reads at most
// one small prefix and never maps the file, so it is safe to call on a
// file that is being rewritten. Stat errors are returned; an unreadable
// or unrecognizable magic just leaves Family/Version zero (the file's
// identity is still useful even when its header is garbage).
func FileProvenance(path string) (Provenance, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return Provenance{Path: path}, err
	}
	p := Provenance{Path: path, Bytes: fi.Size(), ModTime: fi.ModTime()}
	f, err := os.Open(path)
	if err != nil {
		return p, nil
	}
	defer f.Close()
	// Magic tags end in '\n' within the first few dozen bytes; read a
	// prefix and split on the first newline.
	var head [32]byte
	n, _ := f.Read(head[:])
	for i := 0; i < n; i++ {
		if head[i] == '\n' {
			if family, version, ok := splitMagic(string(head[:i+1])); ok {
				p.Family, p.Version = family, version
			}
			break
		}
	}
	return p, nil
}
