package binio

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"unsafe"
)

// FormatVersionError reports a magic tag from the right index family but
// the wrong format version — a v2 file fed to a v4 loader, or a v4 file
// fed to an old binary. Serializers wrap it with a rebuild hint so the
// operator-facing message names the fix, not just the mismatch.
type FormatVersionError struct {
	Family string // e.g. "FANNRPHL"
	Found  int    // version carried by the stream
	Want   int    // version this build reads
}

func (e *FormatVersionError) Error() string {
	return fmt.Sprintf("binio: %s index is format v%d, this build reads v%d",
		e.Family, e.Found, e.Want)
}

// splitMagic decomposes a magic tag like "FANNRPHL3\n" into its family
// ("FANNRPHL") and version (3). Tags without trailing digits are version
// 1 (the original format predates version digits).
func splitMagic(tag string) (family string, version int, ok bool) {
	s := strings.TrimSuffix(tag, "\n")
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == 0 || i < len(s)-2 { // all digits, or implausibly long version
		return "", 0, false
	}
	family = s[:i]
	version = 1
	if i < len(s) {
		v, err := strconv.Atoi(s[i:])
		if err != nil {
			return "", 0, false
		}
		version = v
	}
	return family, version, true
}

// magicError builds the error for a magic mismatch: a FormatVersionError
// when got is a different version of want's family (so callers and
// operators can tell "old index" from "not an index"), a plain mismatch
// otherwise.
func magicError(got, want string) error {
	wf, wv, wok := splitMagic(want)
	// The stream's tag may be longer or shorter than the expected one
	// (version digits come and go); compare on the family prefix.
	if wok && strings.HasPrefix(got, wf) {
		if gf, gv, gok := splitMagic(got[:min(len(got), len(wf)+3)]); gok && gf == wf && gv != wv {
			return &FormatVersionError{Family: wf, Found: gv, Want: wv}
		}
	}
	return fmt.Errorf("binio: bad magic %q, want %q", got, want)
}

// readFileAligned reads the whole file into a buffer whose base address
// is 8-byte aligned, so the zero-copy slice views work on heap-loaded
// files exactly as they do on page-aligned mappings.
func readFileAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size != int64(int(size)) {
		return nil, fmt.Errorf("binio: %s: %d bytes exceed the address space", path, size)
	}
	// Allocate as []uint64 to get 8-byte alignment by construction.
	words := (int(size) + 7) / 8
	if words == 0 {
		words = 1
	}
	backing := make([]uint64, words)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), words*8)[:size]
	if _, err := readFull(f, buf); err != nil {
		return nil, fmt.Errorf("binio: reading %s: %w", path, err)
	}
	return buf, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := f.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
