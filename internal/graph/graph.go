// Package graph implements the road-network substrate of fannr: a compact
// CSR (compressed sparse row) representation of undirected weighted graphs
// with planar coordinates, DIMACS I/O, synthetic road-network generators,
// and connected-component utilities.
//
// Coordinates give every algorithm in fannr a Euclidean lower bound on
// network distance: Graph.LowerBound scales raw Euclidean distance by the
// inverse of the fastest observed edge "speed" (Euclidean length divided by
// weight), so the bound is admissible even on networks whose weights are
// travel times rather than lengths.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node; ids are dense in [0, NumNodes).
type NodeID = int32

// Graph is an undirected weighted road network in CSR form. Graphs are
// immutable after construction and safe for concurrent readers.
type Graph struct {
	name     string
	adjStart []int32 // len NumNodes+1; adjacency of v is [adjStart[v], adjStart[v+1])
	adjNode  []NodeID
	adjW     []float64
	x, y     []float64
	hasCoord bool
	// invSpeed converts Euclidean distance into an admissible lower bound
	// on network distance: lb = euclid * invSpeed. It is
	// 1/max_e(euclid(e)/w(e)), or 0 when coordinates are absent.
	invSpeed float64
}

// Edge is an undirected edge for graph construction.
type Edge struct {
	U, V NodeID
	W    float64
}

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder struct {
	n        int
	edges    []Edge
	x, y     []float64
	hasCoord bool
	name     string
}

// NewBuilder returns a builder for a graph with n nodes and no coordinates.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// SetName sets the graph's dataset name (informational).
func (b *Builder) SetName(name string) { b.name = name }

// SetCoords attaches planar coordinates; len(x) and len(y) must equal the
// node count.
func (b *Builder) SetCoords(x, y []float64) error {
	if len(x) != b.n || len(y) != b.n {
		return fmt.Errorf("graph: coords length %d,%d != node count %d", len(x), len(y), b.n)
	}
	b.x, b.y = x, y
	b.hasCoord = true
	return nil
}

// AddEdge adds an undirected edge. Self-loops are rejected; duplicate edges
// are merged at Build time keeping the minimum weight.
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive or infinite weight %v", u, v, w)
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
	return nil
}

// Build produces the immutable CSR graph.
func (b *Builder) Build() (*Graph, error) {
	if b.n == 0 {
		return nil, errors.New("graph: empty graph")
	}
	// Canonicalize and dedup (keep the lightest parallel edge).
	for i := range b.edges {
		if b.edges[i].U > b.edges[i].V {
			b.edges[i].U, b.edges[i].V = b.edges[i].V, b.edges[i].U
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		ei, ej := b.edges[i], b.edges[j]
		if ei.U != ej.U {
			return ei.U < ej.U
		}
		if ei.V != ej.V {
			return ei.V < ej.V
		}
		return ei.W < ej.W
	})
	dedup := b.edges[:0]
	for _, e := range b.edges {
		if n := len(dedup); n > 0 && dedup[n-1].U == e.U && dedup[n-1].V == e.V {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	g := &Graph{
		name:     b.name,
		adjStart: make([]int32, b.n+1),
		adjNode:  make([]NodeID, 2*len(b.edges)),
		adjW:     make([]float64, 2*len(b.edges)),
		x:        b.x,
		y:        b.y,
		hasCoord: b.hasCoord,
	}
	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < b.n; v++ {
		g.adjStart[v+1] = g.adjStart[v] + deg[v]
	}
	cursor := make([]int32, b.n)
	copy(cursor, g.adjStart[:b.n])
	for _, e := range b.edges {
		g.adjNode[cursor[e.U]] = e.V
		g.adjW[cursor[e.U]] = e.W
		cursor[e.U]++
		g.adjNode[cursor[e.V]] = e.U
		g.adjW[cursor[e.V]] = e.W
		cursor[e.V]++
	}
	if b.hasCoord {
		maxSpeed := 0.0
		for _, e := range b.edges {
			d := g.Euclid(e.U, e.V)
			if s := d / e.W; s > maxSpeed {
				maxSpeed = s
			}
		}
		if maxSpeed > 0 {
			g.invSpeed = 1 / maxSpeed
		}
	}
	return g, nil
}

// Name returns the dataset name ("" if unset).
func (g *Graph) Name() string { return g.name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adjStart) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adjNode) / 2 }

// HasCoords reports whether planar coordinates are attached.
func (g *Graph) HasCoords() bool { return g.hasCoord }

// Coord returns the coordinates of v. It must only be called when
// HasCoords is true.
func (g *Graph) Coord(v NodeID) (x, y float64) { return g.x[v], g.y[v] }

// Neighbors returns the adjacency of v as parallel slices of neighbor ids
// and edge weights. The slices alias the graph's storage and must not be
// modified.
func (g *Graph) Neighbors(v NodeID) ([]NodeID, []float64) {
	s, e := g.adjStart[v], g.adjStart[v+1]
	return g.adjNode[s:e], g.adjW[s:e]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	nbrs, ws := g.Neighbors(u)
	for i, n := range nbrs {
		if n == v {
			return ws[i], true
		}
	}
	return 0, false
}

// Euclid returns the Euclidean distance between two nodes. It must only be
// called when HasCoords is true.
func (g *Graph) Euclid(u, v NodeID) float64 {
	dx := g.x[u] - g.x[v]
	dy := g.y[u] - g.y[v]
	return math.Hypot(dx, dy)
}

// LowerBound returns an admissible lower bound on the network distance
// between u and v derived from their Euclidean distance. It returns 0 when
// the graph has no coordinates.
func (g *Graph) LowerBound(u, v NodeID) float64 {
	if !g.hasCoord {
		return 0
	}
	return g.Euclid(u, v) * g.invSpeed
}

// ScaleEuclid converts a raw Euclidean distance (in coordinate units) into
// an admissible lower bound on network distance. Spatial indexes use this
// to turn MBR mindists into network-distance bounds (Lemma 1 of the paper).
func (g *Graph) ScaleEuclid(d float64) float64 {
	if !g.hasCoord {
		return 0
	}
	return d * g.invSpeed
}

// Edges appends all undirected edges (U < V) to dst and returns it.
func (g *Graph) Edges(dst []Edge) []Edge {
	for u := 0; u < g.NumNodes(); u++ {
		s, e := g.adjStart[u], g.adjStart[u+1]
		for i := s; i < e; i++ {
			if v := g.adjNode[i]; NodeID(u) < v {
				dst = append(dst, Edge{U: NodeID(u), V: v, W: g.adjW[i]})
			}
		}
	}
	return dst
}

// SplitEdge returns a new graph with an additional vertex placed on edge
// (u, v) at fraction t ∈ (0, 1) of its weight from u, plus the id of the
// new vertex. This realizes the paper's §II-A convention for query or
// data objects that lie on an edge rather than at a vertex: split the
// edge and query on the new vertex, which is exact.
func SplitEdge(g *Graph, u, v NodeID, t float64) (*Graph, NodeID, error) {
	w, ok := g.EdgeWeight(u, v)
	if !ok {
		return nil, 0, fmt.Errorf("graph: no edge (%d,%d) to split", u, v)
	}
	if !(t > 0 && t < 1) {
		return nil, 0, fmt.Errorf("graph: split fraction %v outside (0,1)", t)
	}
	n := g.NumNodes()
	mid := NodeID(n)
	b := NewBuilder(n + 1)
	b.SetName(g.name)
	if g.hasCoord {
		x := make([]float64, n+1)
		y := make([]float64, n+1)
		copy(x, g.x)
		copy(y, g.y)
		x[n] = g.x[u] + t*(g.x[v]-g.x[u])
		y[n] = g.y[u] + t*(g.y[v]-g.y[u])
		if err := b.SetCoords(x, y); err != nil {
			return nil, 0, err
		}
	}
	for _, e := range g.Edges(nil) {
		if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
			continue
		}
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, 0, err
		}
	}
	if err := b.AddEdge(u, mid, t*w); err != nil {
		return nil, 0, err
	}
	if err := b.AddEdge(mid, v, (1-t)*w); err != nil {
		return nil, 0, err
	}
	out, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return out, mid, nil
}

// BoundingBox returns the coordinate bounds of all nodes. It must only be
// called when HasCoords is true.
func (g *Graph) BoundingBox() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for i := range g.x {
		minX = math.Min(minX, g.x[i])
		maxX = math.Max(maxX, g.x[i])
		minY = math.Min(minY, g.y[i])
		maxY = math.Max(maxY, g.y[i])
	}
	return
}
