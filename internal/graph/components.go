package graph

// ConnectedComponents labels each node with a component id in [0, count)
// and returns the labels and the component count. The paper's datasets
// required the same cleanup ("the original datasets have many errors, such
// as unconnected components or self-loops").
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []NodeID
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = int32(count)
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if labels[u] < 0 {
					labels[u] = int32(count)
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent extracts the induced subgraph of the largest connected
// component. It returns the subgraph and origID, which maps new node ids to
// ids in g. If g is already connected it is returned unchanged with a nil
// mapping.
func LargestComponent(g *Graph) (*Graph, []NodeID, error) {
	labels, count := ConnectedComponents(g)
	if count == 1 {
		return g, nil, nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	newID := make([]NodeID, g.NumNodes())
	origID := make([]NodeID, 0, sizes[best])
	for v := 0; v < g.NumNodes(); v++ {
		if labels[v] == int32(best) {
			newID[v] = NodeID(len(origID))
			origID = append(origID, NodeID(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(len(origID))
	b.SetName(g.Name())
	if g.HasCoords() {
		x := make([]float64, len(origID))
		y := make([]float64, len(origID))
		for i, ov := range origID {
			x[i], y[i] = g.Coord(ov)
		}
		if err := b.SetCoords(x, y); err != nil {
			return nil, nil, err
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if newID[v] < 0 {
			continue
		}
		nbrs, ws := g.Neighbors(NodeID(v))
		for i, u := range nbrs {
			if NodeID(v) < u && newID[u] >= 0 {
				if err := b.AddEdge(newID[v], newID[u], ws[i]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, origID, nil
}
