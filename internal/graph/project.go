package graph

import "math"

// Real DIMACS road networks store coordinates as longitude/latitude in
// microdegrees. Euclidean distances in that frame are distorted (a degree
// of longitude shrinks with latitude), which loosens — never breaks — the
// Euclidean lower bounds (the builder's speed calibration keeps them
// admissible under any linear-ish distortion). Reprojecting into a
// locally distance-faithful frame tightens A* heuristics and IER bounds
// on real data.

// Projection maps coordinates into a new planar frame.
type Projection func(x, y float64) (float64, float64)

// Equirectangular returns a projection for lon/lat input (in consistent
// units, degrees or microdegrees): longitudes are compressed by the
// cosine of the mid-latitude, making local Euclidean distances
// proportional to ground distances.
func Equirectangular(midLatDegrees float64) Projection {
	c := math.Cos(midLatDegrees * math.Pi / 180)
	return func(x, y float64) (float64, float64) {
		return x * c, y
	}
}

// EquirectangularFor computes the graph's mid-latitude from its
// coordinate bounding box, assuming coordinates are lon/lat in
// microdegrees (the DIMACS convention) when values exceed ±1000, plain
// degrees otherwise.
func EquirectangularFor(g *Graph) Projection {
	_, minY, _, maxY := g.BoundingBox()
	mid := (minY + maxY) / 2
	if math.Abs(mid) > 1000 { // microdegrees
		mid /= 1e6
	}
	return Equirectangular(mid)
}

// Reproject rebuilds g with every coordinate passed through proj. Edge
// weights are unchanged; the Euclidean-to-network calibration is
// recomputed for the new frame.
func Reproject(g *Graph, proj Projection) (*Graph, error) {
	if !g.HasCoords() {
		return g, nil
	}
	n := g.NumNodes()
	b := NewBuilder(n)
	b.SetName(g.Name())
	x := make([]float64, n)
	y := make([]float64, n)
	for v := 0; v < n; v++ {
		cx, cy := g.Coord(NodeID(v))
		x[v], y[v] = proj(cx, cy)
	}
	if err := b.SetCoords(x, y); err != nil {
		return nil, err
	}
	for _, e := range g.Edges(nil) {
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
