package graph

import (
	"math"
	"testing"
)

// tinyGraph builds the 5-node test network used across this package:
//
//	0 --1-- 1 --2-- 2
//	|       |
//	4       3
//	|       |
//	3 --2-- 4
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	for _, e := range []Edge{{0, 1, 1}, {1, 2, 2}, {0, 3, 4}, {1, 4, 3}, {3, 4, 2}} {
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildCounts(t *testing.T) {
	g := tinyGraph(t)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if g.Degree(1) != 3 {
		t.Fatalf("Degree(1) = %d, want 3", g.Degree(1))
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	g := tinyGraph(t)
	for u := 0; u < g.NumNodes(); u++ {
		nbrs, ws := g.Neighbors(NodeID(u))
		for i, v := range nbrs {
			w, ok := g.EdgeWeight(v, NodeID(u))
			if !ok || w != ws[i] {
				t.Fatalf("edge (%d,%d) not symmetric: %v vs %v (ok=%v)", u, v, ws[i], w, ok)
			}
		}
	}
}

func TestBuildRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.AddEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := b.AddEdge(0, 1, math.Inf(1)); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

func TestBuildMergesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1, 5)
	_ = b.AddEdge(1, 0, 3) // reversed duplicate, lighter
	_ = b.AddEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 3 {
		t.Fatalf("EdgeWeight = (%v,%v), want (3,true)", w, ok)
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestLowerBoundAdmissibleWithTravelTimeWeights(t *testing.T) {
	// Two nodes 10 apart with weight 2 ("fast" edge): invSpeed = 0.2, so
	// the lower bound of any pair must not exceed its true distance.
	b := NewBuilder(3)
	x := []float64{0, 10, 20}
	y := []float64{0, 0, 0}
	if err := b.SetCoords(x, y); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEdge(0, 1, 2)  // speed 5
	_ = b.AddEdge(1, 2, 10) // speed 1
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if lb := g.LowerBound(0, 2); lb > 12 {
		t.Fatalf("LowerBound(0,2) = %v exceeds true distance 12", lb)
	}
	if lb := g.LowerBound(0, 1); lb > 2 {
		t.Fatalf("LowerBound(0,1) = %v exceeds true distance 2", lb)
	}
	if g.ScaleEuclid(10) != g.LowerBound(0, 1) {
		t.Fatalf("ScaleEuclid inconsistent with LowerBound")
	}
}

func TestLowerBoundWithoutCoords(t *testing.T) {
	g := tinyGraph(t)
	if g.HasCoords() {
		t.Fatal("tinyGraph should have no coords")
	}
	if g.LowerBound(0, 2) != 0 || g.ScaleEuclid(5) != 0 {
		t.Fatal("lower bounds without coords must be 0")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	edges := g.Edges(nil)
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.NumEdges())
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge not canonical: %+v", e)
		}
		if w, ok := g.EdgeWeight(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge %+v missing from graph", e)
		}
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(10)
	s.Add(3, 7)
	s.Add(5, 1)
	s.Add(3, 9) // overwrite payload
	if !s.Contains(3) || !s.Contains(5) || s.Contains(4) {
		t.Fatal("membership wrong")
	}
	if v, ok := s.Value(3); !ok || v != 9 {
		t.Fatalf("Value(3) = (%d,%v), want (9,true)", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(3) {
		t.Fatal("Reset did not clear set")
	}
	s.AddAll([]NodeID{8, 2})
	if v, _ := s.Value(2); v != 1 {
		t.Fatalf("AddAll payload = %d, want 1", v)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(3, 4, 1)
	// node 5 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 should share a component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] || labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("component labels wrong")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(6)
	x := []float64{0, 1, 2, 10, 11, 20}
	y := make([]float64, 6)
	if err := b.SetCoords(x, y); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(3, 4, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("LCC has %d nodes %d edges, want 3 and 2", sub.NumNodes(), sub.NumEdges())
	}
	for newV, oldV := range orig {
		nx, _ := sub.Coord(NodeID(newV))
		ox, _ := g.Coord(oldV)
		if nx != ox {
			t.Fatalf("coords not carried over for node %d", newV)
		}
	}
	if _, count := ConnectedComponents(sub); count != 1 {
		t.Fatal("LCC not connected")
	}
}

func TestLargestComponentAlreadyConnected(t *testing.T) {
	g := tinyGraph(t)
	sub, orig, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub != g || orig != nil {
		t.Fatal("connected graph should be returned unchanged")
	}
}
