package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleGR = `c sample
p sp 4 8
a 1 2 3
a 2 1 3
a 2 3 4
a 3 2 4
a 3 4 5
a 4 3 5
a 1 4 10
a 4 1 10
`

const sampleCO = `c sample coords
p aux sp co 4
v 1 0 0
v 2 3 0
v 3 3 4
v 4 0 4
`

func TestReadDIMACS(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader(sampleGR), strings.NewReader(sampleCO))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges, want 4 and 4", g.NumNodes(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 3); !ok || w != 10 {
		t.Fatalf("edge (0,3) = (%v,%v), want (10,true)", w, ok)
	}
	if !g.HasCoords() {
		t.Fatal("coords missing")
	}
	if x, y := g.Coord(2); x != 3 || y != 4 {
		t.Fatalf("Coord(2) = (%v,%v), want (3,4)", x, y)
	}
	if g.Euclid(0, 1) != 3 {
		t.Fatalf("Euclid(0,1) = %v, want 3", g.Euclid(0, 1))
	}
}

func TestReadDIMACSNoCoords(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader(sampleGR), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasCoords() {
		t.Fatal("unexpected coords")
	}
}

func TestReadDIMACSDropsSelfLoops(t *testing.T) {
	in := "p sp 2 3\na 1 1 5\na 1 2 1\na 2 1 1\n"
	g, err := ReadDIMACS(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",            // arc before problem line
		"p sp x 1\n",           // bad node count
		"p sp 2 1\na 1 2\n",    // short arc
		"p sp 2 1\nq 1 2 3\n",  // unknown record
		"p sp 2 1\na 1 9 3\n",  // out of range
		"p sp 2 1\na 1 2 -3\n", // negative weight
		"",                     // no problem line
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in), nil); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g, err := Generate(GenConfig{Nodes: 300, Seed: 42, Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	var gr, co bytes.Buffer
	if err := WriteDIMACS(g, &gr, &co); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&gr, &co)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges(nil) {
		if w, ok := g2.EdgeWeight(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge %+v lost in round trip (got %v,%v)", e, w, ok)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	g, err := Generate(GenConfig{Nodes: 2000, Seed: 7, Name: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 1000 {
		t.Fatalf("generator lost too many nodes: %d", g.NumNodes())
	}
	if _, count := ConnectedComponents(g); count != 1 {
		t.Fatal("generated graph not connected")
	}
	// Edge weights must dominate Euclidean length (Lemma 1 admissibility).
	for _, e := range g.Edges(nil) {
		if e.W < g.Euclid(e.U, e.V)-1e-9 {
			t.Fatalf("edge %+v lighter than Euclidean %v", e, g.Euclid(e.U, e.V))
		}
	}
	// Sparsity in the road-network range.
	avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avgDeg < 1.5 || avgDeg > 4.5 {
		t.Fatalf("average degree %v outside road-network range", avgDeg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Nodes: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Nodes: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("generator not deterministic")
	}
	ea, eb := a.Edges(nil), b.Edges(nil)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateRejectsTiny(t *testing.T) {
	if _, err := Generate(GenConfig{Nodes: 1}); err == nil {
		t.Fatal("1-node generation accepted")
	}
}
