package graph

import (
	"math"
	"testing"
)

func TestSplitEdge(t *testing.T) {
	b := NewBuilder(3)
	x := []float64{0, 10, 20}
	y := []float64{0, 0, 0}
	if err := b.SetCoords(x, y); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEdge(0, 1, 10)
	_ = b.AddEdge(1, 2, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	split, mid, err := SplitEdge(g, 0, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if split.NumNodes() != 4 || mid != 3 {
		t.Fatalf("got %d nodes, mid=%d", split.NumNodes(), mid)
	}
	if w, ok := split.EdgeWeight(0, mid); !ok || math.Abs(w-3) > 1e-12 {
		t.Fatalf("weight (0,mid) = %v,%v, want 3", w, ok)
	}
	if w, ok := split.EdgeWeight(mid, 1); !ok || math.Abs(w-7) > 1e-12 {
		t.Fatalf("weight (mid,1) = %v,%v, want 7", w, ok)
	}
	if _, ok := split.EdgeWeight(0, 1); ok {
		t.Fatal("original edge survived the split")
	}
	// Other edges untouched.
	if w, ok := split.EdgeWeight(1, 2); !ok || w != 10 {
		t.Fatalf("edge (1,2) = %v,%v", w, ok)
	}
	// Coordinates interpolate.
	mx, my := split.Coord(mid)
	if math.Abs(mx-3) > 1e-12 || my != 0 {
		t.Fatalf("mid at (%v,%v), want (3,0)", mx, my)
	}
}

func TestSplitEdgeErrors(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1, 5)
	g, _ := b.Build()
	if _, _, err := SplitEdge(g, 0, 2, 0.5); err == nil {
		t.Fatal("split of missing edge accepted")
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if _, _, err := SplitEdge(g, 0, 1, bad); err == nil {
			t.Fatalf("fraction %v accepted", bad)
		}
	}
}

func TestSplitEdgePreservesDistances(t *testing.T) {
	g, err := Generate(GenConfig{Nodes: 300, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges(nil)[10]
	split, mid, err := SplitEdge(g, e.U, e.V, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Distances between original vertices are unchanged (BFS-free check
	// via a few spot pairs using simple Dijkstra re-implemented inline
	// would be circular; instead verify through the new vertex).
	if w, ok := split.EdgeWeight(e.U, NodeID(mid)); !ok || math.Abs(w-e.W/2) > 1e-9 {
		t.Fatalf("half edge weight %v, want %v", w, e.W/2)
	}
	if split.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("edges %d, want %d", split.NumEdges(), g.NumEdges()+1)
	}
}
