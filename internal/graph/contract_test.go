package graph

import (
	"math"
	"testing"
)

// chainGraph: 0 -1- 1 -2- 2 -3- 3 with a side branch at 0 and 3, so 1,2
// are a contractible chain.
//
//	4 -5- 0 -1- 1 -2- 2 -3- 3 -7- 5
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	for _, e := range []Edge{
		{U: 4, V: 0, W: 5}, {U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2},
		{U: 2, V: 3, W: 3}, {U: 3, V: 5, W: 7},
	} {
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestContractChainsCollapsesInterior(t *testing.T) {
	g := chainGraph(t)
	// Degrees: 4:1 0:2 1:2 2:2 3:2 5:1 — everything between 4 and 5 is a
	// chain; only the endpoints survive.
	out, orig, err := ContractChains(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 2 || out.NumEdges() != 1 {
		t.Fatalf("contracted to %d nodes %d edges, want 2 and 1", out.NumNodes(), out.NumEdges())
	}
	if w, ok := out.EdgeWeight(0, 1); !ok || math.Abs(w-18) > 1e-12 {
		t.Fatalf("chain weight %v, want 18", w)
	}
	if len(orig) != 2 {
		t.Fatalf("origID %v", orig)
	}
}

func TestContractChainsKeepHook(t *testing.T) {
	g := chainGraph(t)
	out, orig, err := ContractChains(g, func(v NodeID) bool { return v == 2 })
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (endpoints + pinned vertex)", out.NumNodes())
	}
	// Distances through the pinned vertex preserved: 4..2 = 8, 2..5 = 10.
	var pinned, end4, end5 NodeID = -1, -1, -1
	for newV, oldV := range orig {
		switch oldV {
		case 2:
			pinned = NodeID(newV)
		case 4:
			end4 = NodeID(newV)
		case 5:
			end5 = NodeID(newV)
		}
	}
	if w, ok := out.EdgeWeight(end4, pinned); !ok || math.Abs(w-8) > 1e-12 {
		t.Fatalf("4..2 weight %v, want 8", w)
	}
	if w, ok := out.EdgeWeight(pinned, end5); !ok || math.Abs(w-10) > 1e-12 {
		t.Fatalf("2..5 weight %v, want 10", w)
	}
}

func TestContractChainsPreservesDistances(t *testing.T) {
	g, err := Generate(GenConfig{Nodes: 1200, Seed: 120})
	if err != nil {
		t.Fatal(err)
	}
	out, orig, err := ContractChains(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() >= g.NumNodes() {
		t.Fatalf("no contraction happened: %d >= %d", out.NumNodes(), g.NumNodes())
	}
	// Compare all-pairs over a sample of kept vertices using simple BFS
	// Dijkstra re-implemented via the package-internal test helper: use
	// Floyd-free spot checks with the sp package — unavailable here
	// (import cycle), so verify via edge-accurate reconstruction: every
	// contracted edge's weight must equal the true distance when the
	// interior is degree-2 only. Instead, spot-check with an in-package
	// Dijkstra.
	dOrig := simpleDijkstra(g)
	dNew := simpleDijkstra(out)
	for i := 0; i < 30; i++ {
		u := NodeID((i * 37) % out.NumNodes())
		v := NodeID((i * 91) % out.NumNodes())
		want := dOrig(orig[u], orig[v])
		got := dNew(u, v)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("distance (%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestContractChainsPureCycle(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1}} {
		_ = b.AddEdge(e.U, e.V, e.W)
	}
	g, _ := b.Build()
	out, _, err := ContractChains(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() < 1 {
		t.Fatal("cycle component vanished")
	}
}

// simpleDijkstra is a minimal in-package SSSP for tests (the sp package
// cannot be imported here without a cycle).
func simpleDijkstra(g *Graph) func(u, v NodeID) float64 {
	return func(u, v NodeID) float64 {
		n := g.NumNodes()
		dist := make([]float64, n)
		done := make([]bool, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[u] = 0
		for {
			best := -1
			bestD := math.Inf(1)
			for i := 0; i < n; i++ {
				if !done[i] && dist[i] < bestD {
					best, bestD = i, dist[i]
				}
			}
			if best < 0 {
				return dist[v]
			}
			if NodeID(best) == v {
				return bestD
			}
			done[best] = true
			nbrs, ws := g.Neighbors(NodeID(best))
			for i, nb := range nbrs {
				if d := bestD + ws[i]; d < dist[nb] {
					dist[nb] = d
				}
			}
		}
	}
}
