package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDIMACS exercises the .gr parser: it must never panic and, when
// it accepts an input, the produced graph must satisfy basic invariants.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 5\na 2 3 1.5\n")
	f.Add("c comment\np sp 1 0\n")
	f.Add("p sp 2 1\na 1 1 5\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 2 1\na 1 2 -1\n")
	f.Add("p sp 999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadDIMACS(strings.NewReader(input), nil)
		if err != nil {
			return
		}
		if g.NumNodes() <= 0 {
			t.Fatal("accepted graph with no nodes")
		}
		for v := 0; v < g.NumNodes(); v++ {
			nbrs, ws := g.Neighbors(NodeID(v))
			for i, u := range nbrs {
				if u < 0 || int(u) >= g.NumNodes() {
					t.Fatalf("neighbor %d out of range", u)
				}
				if !(ws[i] > 0) {
					t.Fatalf("non-positive weight %v survived", ws[i])
				}
			}
		}
		// Accepted graphs must round-trip.
		var buf bytes.Buffer
		if err := WriteDIMACS(g, &buf, nil); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadDIMACS(&buf, nil)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadCoords exercises the .co parser alongside a fixed .gr input.
func FuzzReadCoords(f *testing.F) {
	f.Add("p aux sp co 2\nv 1 10 20\nv 2 30 40\n")
	f.Add("v 1 1 1\n")
	f.Add("p aux sp co 2\nv 9 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		gr := "p sp 2 1\na 1 2 3\n"
		g, err := ReadDIMACS(strings.NewReader(gr), strings.NewReader(input))
		if err != nil {
			return
		}
		if !g.HasCoords() {
			t.Fatal("accepted graph lost coords")
		}
		_ = g.Euclid(0, 1)
	})
}
