package graph

import (
	"math"
	"testing"
)

func TestEquirectangularCompressesLongitude(t *testing.T) {
	proj := Equirectangular(60) // cos 60° = 0.5
	x, y := proj(10, 20)
	if math.Abs(x-5) > 1e-12 || y != 20 {
		t.Fatalf("proj(10,20) = (%v,%v), want (5,20)", x, y)
	}
	eq := Equirectangular(0)
	if px, _ := eq(10, 0); math.Abs(px-10) > 1e-12 {
		t.Fatal("equator projection should be identity in x")
	}
}

func TestEquirectangularForDetectsMicrodegrees(t *testing.T) {
	b := NewBuilder(2)
	// Seattle-ish in microdegrees: lat ~47.6e6.
	if err := b.SetCoords([]float64{-122_300_000, -122_200_000}, []float64{47_600_000, 47_700_000}); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEdge(0, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	proj := EquirectangularFor(g)
	x, _ := proj(1_000_000, 0)
	want := 1_000_000 * math.Cos(47.65*math.Pi/180)
	if math.Abs(x-want) > 1 {
		t.Fatalf("microdegree mid-latitude not detected: %v vs %v", x, want)
	}
}

func TestReprojectPreservesTopologyAndTightensBounds(t *testing.T) {
	// A high-latitude grid in lon/lat degrees: raw Euclid overestimates
	// east-west ground distance, so after builder calibration the bounds
	// are loose; reprojection tightens them.
	b := NewBuilder(4)
	lon := []float64{0, 1, 0, 1}
	lat := []float64{60, 60, 61, 61}
	if err := b.SetCoords(lon, lat); err != nil {
		t.Fatal(err)
	}
	// Ground distances: 1° lon at 60° ≈ 0.5 units, 1° lat = 1 unit.
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(2, 3, 0.5)
	_ = b.AddEdge(0, 2, 1.0)
	_ = b.AddEdge(1, 3, 1.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Reproject(g, Equirectangular(60.5))
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumNodes() != g.NumNodes() || pg.NumEdges() != g.NumEdges() {
		t.Fatal("reprojection changed topology")
	}
	for _, e := range g.Edges(nil) {
		w2, ok := pg.EdgeWeight(e.U, e.V)
		if !ok || w2 != e.W {
			t.Fatal("reprojection changed weights")
		}
	}
	// Both frames must stay admissible. In the raw frame the "fast"
	// east-west edges (Euclidean 1° but weight 0.5) force a global 0.5×
	// calibration that halves every north-south bound; the projected
	// frame removes that distortion.
	raw := g.LowerBound(0, 2)
	proj := pg.LowerBound(0, 2)
	if raw > 1.0+1e-9 || proj > 1.0+1e-9 {
		t.Fatalf("bounds not admissible: raw %v proj %v vs true 1.0", raw, proj)
	}
	if proj <= raw+0.2 {
		t.Fatalf("projection did not tighten the north-south bound: %v vs raw %v", proj, raw)
	}
	if ew := pg.LowerBound(0, 1); ew > 0.5+1e-9 {
		t.Fatalf("projected east-west bound %v not admissible vs true 0.5", ew)
	}
}

func TestReprojectWithoutCoords(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	pg, err := Reproject(g, Equirectangular(45))
	if err != nil || pg != g {
		t.Fatalf("coordless reprojection should be identity: %v %v", pg, err)
	}
}
