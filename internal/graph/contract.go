package graph

// ContractChains simplifies a road network by removing degree-2 vertices:
// each maximal chain of them collapses into a single edge whose weight is
// the chain length, preserving shortest-path distances among the retained
// vertices exactly. Real road networks (including the paper's DIMACS
// datasets) are full of such chains — contraction routinely removes a
// large fraction of vertices before index construction.
//
// keep, when non-nil, forces retention of specific vertices (e.g., every
// vertex hosting a data or query point). Vertices of degree ≠ 2 are
// always retained. The returned origID maps new ids to ids in g.
func ContractChains(g *Graph, keep func(NodeID) bool) (*Graph, []NodeID, error) {
	n := g.NumNodes()
	kept := make([]bool, n)
	for v := 0; v < n; v++ {
		if g.Degree(NodeID(v)) != 2 || (keep != nil && keep(NodeID(v))) {
			kept[v] = true
		}
	}
	visited := make([]bool, n)
	type edge struct {
		u, v NodeID
		w    float64
	}
	var edges []edge
	// Walk chains outward from every kept vertex.
	for u := 0; u < n; u++ {
		if !kept[u] {
			continue
		}
		nbrs, ws := g.Neighbors(NodeID(u))
		for i, first := range nbrs {
			if kept[first] {
				if NodeID(u) < first { // plain edge between kept vertices
					edges = append(edges, edge{NodeID(u), first, ws[i]})
				}
				continue
			}
			if visited[first] {
				continue // chain already walked from its other end
			}
			prev := NodeID(u)
			cur := first
			w := ws[i]
			for !kept[cur] {
				visited[cur] = true
				cn, cw := g.Neighbors(cur)
				// Degree-2 interior: step to the neighbor we did not come
				// from.
				next := cn[0]
				nw := cw[0]
				if next == prev {
					next = cn[1]
					nw = cw[1]
				}
				w += nw
				prev, cur = cur, next
			}
			if cur != NodeID(u) { // drop pure loops back to the start
				edges = append(edges, edge{NodeID(u), cur, w})
			}
		}
	}
	// Pure degree-2 cycles have no kept vertex; retain one representative
	// each so no component silently vanishes.
	for v := 0; v < n; v++ {
		if !kept[v] && !visited[v] {
			kept[v] = true
			// Mark the rest of its cycle visited.
			prev := NodeID(v)
			cn, _ := g.Neighbors(NodeID(v))
			if len(cn) == 0 {
				continue
			}
			cur := cn[0]
			for cur != NodeID(v) && !kept[cur] {
				visited[cur] = true
				nn, _ := g.Neighbors(cur)
				next := nn[0]
				if next == prev {
					next = nn[1]
				}
				prev, cur = cur, next
			}
		}
	}

	newID := make([]NodeID, n)
	var origID []NodeID
	for v := 0; v < n; v++ {
		if kept[v] {
			newID[v] = NodeID(len(origID))
			origID = append(origID, NodeID(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(len(origID))
	b.SetName(g.Name())
	if g.HasCoords() {
		x := make([]float64, len(origID))
		y := make([]float64, len(origID))
		for i, ov := range origID {
			x[i], y[i] = g.Coord(ov)
		}
		if err := b.SetCoords(x, y); err != nil {
			return nil, nil, err
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(newID[e.u], newID[e.v], e.w); err != nil {
			return nil, nil, err
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return out, origID, nil
}
