package graph

// NodeSet is a stamped membership set over node ids with O(1) Reset,
// designed to be reused across thousands of queries without re-allocation.
// Each member may carry a small integer payload (e.g., its index within a
// query set).
type NodeSet struct {
	stamp   []uint32
	payload []int32
	epoch   uint32
	ids     []NodeID
}

// NewNodeSet returns a set over ids in [0, n).
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{
		stamp:   make([]uint32, n),
		payload: make([]int32, n),
		epoch:   1,
	}
}

// Cap reports the id-space size the set was built for.
func (s *NodeSet) Cap() int { return len(s.stamp) }

// Reset empties the set in O(1).
func (s *NodeSet) Reset() {
	s.epoch++
	s.ids = s.ids[:0]
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

// Add inserts id with payload value. Re-adding overwrites the payload but
// does not duplicate membership.
func (s *NodeSet) Add(id NodeID, value int32) {
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		s.ids = append(s.ids, id)
	}
	s.payload[id] = value
}

// Contains reports whether id is a member.
func (s *NodeSet) Contains(id NodeID) bool { return s.stamp[id] == s.epoch }

// Value returns the payload of id and whether id is a member.
func (s *NodeSet) Value(id NodeID) (int32, bool) {
	if s.stamp[id] != s.epoch {
		return 0, false
	}
	return s.payload[id], true
}

// Len reports the number of members.
func (s *NodeSet) Len() int { return len(s.ids) }

// Members returns the member ids in insertion order. The slice aliases the
// set's storage and is invalidated by Reset.
func (s *NodeSet) Members() []NodeID { return s.ids }

// AddAll inserts each id with its slice index as payload.
func (s *NodeSet) AddAll(ids []NodeID) {
	for i, id := range ids {
		s.Add(id, int32(i))
	}
}
