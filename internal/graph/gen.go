package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig controls the synthetic road-network generator.
//
// The generator stands in for the DIMACS USA datasets of the paper's
// Table III (the module is offline): it produces connected, sparse,
// near-planar networks whose edge weights dominate the Euclidean distance
// between their endpoints, which is exactly the structure the paper's
// pruning bounds (Lemma 1) and the A*/IER heuristics rely on.
type GenConfig struct {
	Nodes int     // target node count before cleanup (result is slightly smaller)
	Seed  int64   // deterministic generation seed
	Name  string  // dataset name recorded on the graph
	Drop  float64 // fraction of grid edges removed (default 0.30)
	Diag  float64 // diagonal shortcut edges per node (default 0.10)
	// Jitter is the relative weight inflation over Euclidean length:
	// w = euclid * (1 + U[0, Jitter]) (default 0.30). Keeping weights at
	// least the Euclidean length makes Euclidean bounds admissible.
	Jitter float64
	// Spacing is the grid cell size in weight units (default 100).
	Spacing float64
	// NoHighways disables the multi-level highway overlay. Highways are
	// long straight edges at 8- and 64-cell strides with near-Euclidean
	// weight; they emulate the freeway hierarchy of real road networks,
	// which both A*-style heuristics and hub labelings exploit (without
	// them, hub label sizes degrade from the road-network regime to the
	// Θ(√n) planar-grid worst case).
	NoHighways bool
}

func (c *GenConfig) defaults() {
	if c.Drop == 0 {
		c.Drop = 0.30
	}
	if c.Diag == 0 {
		c.Diag = 0.10
	}
	if c.Jitter == 0 {
		c.Jitter = 0.30
	}
	if c.Spacing == 0 {
		c.Spacing = 100
	}
}

// Generate builds a synthetic road network: a jittered grid with random
// edge failures and diagonal shortcuts, reduced to its largest connected
// component. Generation is deterministic for a given config.
func Generate(cfg GenConfig) (*Graph, error) {
	cfg.defaults()
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("graph: Generate needs at least 2 nodes, got %d", cfg.Nodes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := int(math.Ceil(math.Sqrt(float64(cfg.Nodes))))
	rows := (cfg.Nodes + cols - 1) / cols
	n := rows * cols

	x := make([]float64, n)
	y := make([]float64, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			// Jitter keeps nodes within their cell so the grid stays planar.
			x[id] = (float64(c) + 0.35*(rng.Float64()-0.5)) * cfg.Spacing
			y[id] = (float64(r) + 0.35*(rng.Float64()-0.5)) * cfg.Spacing
		}
	}

	b := NewBuilder(n)
	b.SetName(cfg.Name)
	if err := b.SetCoords(x, y); err != nil {
		return nil, err
	}
	euclid := func(u, v int) float64 {
		return math.Hypot(x[u]-x[v], y[u]-y[v])
	}
	addEdge := func(u, v int) error {
		w := euclid(u, v) * (1 + cfg.Jitter*rng.Float64())
		return b.AddEdge(NodeID(u), NodeID(v), w)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols && rng.Float64() >= cfg.Drop {
				if err := addEdge(id, id+1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows && rng.Float64() >= cfg.Drop {
				if err := addEdge(id, id+cols); err != nil {
					return nil, err
				}
			}
		}
	}
	// Diagonal shortcuts emulate highways and non-grid street patterns.
	for i := 0; i < int(cfg.Diag*float64(n)); i++ {
		r := rng.Intn(rows - 1)
		c := rng.Intn(cols - 1)
		id := r*cols + c
		other := id + cols + 1
		if rng.Intn(2) == 0 && c > 0 {
			id = r*cols + c
			other = id + cols - 1
		}
		if err := addEdge(id, other); err != nil {
			return nil, err
		}
	}
	if !cfg.NoHighways {
		// Two highway tiers: minor highways every 8 cells, major every 64.
		// Weight is only slightly above Euclidean, so a long edge genuinely
		// short-cuts the jittered local grid.
		for _, tier := range []struct {
			stride int
			factor float64
		}{{8, 1.02}, {64, 1.01}} {
			if rows <= tier.stride && cols <= tier.stride {
				continue
			}
			for r := 0; r < rows; r += tier.stride {
				for c := 0; c < cols; c += tier.stride {
					id := r*cols + c
					if c+tier.stride < cols {
						other := r*cols + c + tier.stride
						w := euclid(id, other) * tier.factor
						if err := b.AddEdge(NodeID(id), NodeID(other), w); err != nil {
							return nil, err
						}
					}
					if r+tier.stride < rows {
						other := (r+tier.stride)*cols + c
						w := euclid(id, other) * tier.factor
						if err := b.AddEdge(NodeID(id), NodeID(other), w); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	lcc, _, err := LargestComponent(g)
	if err != nil {
		return nil, err
	}
	return lcc, nil
}
