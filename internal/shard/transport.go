package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Transport carries one shard RPC. The two implementations — in-process
// and HTTP — both run every call through the framed codec, so tests
// using the in-process transport exercise byte-for-byte the wire path
// the HTTP deployment ships. Failed calls return *Error so the
// coordinator can relay the shard's {status, code, Retry-After} triple.
type Transport interface {
	Call(ctx context.Context, req *Request) (*Response, error)
	// Target names the endpoint for logs, metrics and /readyz.
	Target() string
}

// InProc serves RPCs against a host in the same process. Requests and
// responses still round-trip through the frame codec: the transport is
// hermetic, not a shortcut.
type InProc struct {
	Host *Host
}

func (t InProc) Target() string { return fmt.Sprintf("inproc:%d", t.Host.ID) }

func (t InProc) Call(ctx context.Context, req *Request) (*Response, error) {
	frame, err := EncodeRequest(req)
	if err != nil {
		return nil, Classify(err, 0)
	}
	decoded, err := DecodeRequest(frame)
	if err != nil {
		return nil, Classify(err, 0)
	}
	resp, err := t.Host.Execute(ctx, decoded)
	if err != nil {
		return nil, Classify(err, t.Host.retryAfterSecs())
	}
	out, err := EncodeResponse(resp)
	if err != nil {
		return nil, &Error{Status: http.StatusInternalServerError, Code: "internal", Msg: err.Error()}
	}
	return DecodeResponse(out)
}

// HTTPTransport calls a shard host over its JSON-over-HTTP RPC.
type HTTPTransport struct {
	// URL is the host's base URL (e.g. "http://10.0.0.3:7101").
	URL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (t *HTTPTransport) Target() string { return t.URL }

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	frame, err := EncodeRequest(req)
	if err != nil {
		return nil, Classify(err, 0)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/shard/fann", bytes.NewReader(frame))
	if err != nil {
		return nil, &Error{Status: http.StatusInternalServerError, Code: "internal", Msg: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hresp, err := t.client().Do(hreq)
	if err != nil {
		// Connection refused, reset, context expiry: the shard is
		// unreachable — retryable overload-class fault.
		if ctx.Err() != nil {
			return nil, &Error{Status: http.StatusGatewayTimeout, Code: "timeout", Msg: err.Error()}
		}
		return nil, &Error{Status: http.StatusServiceUnavailable, Code: "overloaded", RetryAfter: 1, Msg: err.Error()}
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, maxFramePayload+frameHeader+frameTrailer+1))
	if err != nil {
		return nil, &Error{Status: http.StatusInternalServerError, Code: "internal", Msg: fmt.Sprintf("reading shard response: %v", err)}
	}
	if hresp.StatusCode != http.StatusOK {
		se := &Error{Status: hresp.StatusCode, Code: "internal", Msg: fmt.Sprintf("shard %s: status %d", t.URL, hresp.StatusCode)}
		var body2 struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(body, &body2) == nil && body2.Code != "" {
			se.Code = body2.Code
			se.Msg = body2.Error
		}
		if ra := hresp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				se.RetryAfter = secs
			}
		}
		return nil, se
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		// A corrupt response frame is the shard's fault, not the
		// client's: internal (retryable), not "invalid".
		return nil, &Error{Status: http.StatusInternalServerError, Code: "internal", Msg: err.Error()}
	}
	return resp, nil
}
