package shard

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/resil"
)

// cluster is an in-process shard deployment: plan + one host per shard
// wired to a coordinator through InProc transports (every call still
// round-trips the frame codec).
type cluster struct {
	g     *graph.Graph
	plan  *Plan
	hosts []*Host
	coord *Coordinator
}

func newTestCluster(t *testing.T, nodes int, seed int64, shards int, opts CoordinatorOptions) *cluster {
	t.Helper()
	g, tr := testGraph(t, nodes, seed)
	plan, err := NewPlan(g, tr, PlanOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{g: g, plan: plan}
	transports := make([]Transport, shards)
	for s := 0; s < shards; s++ {
		h := NewHost(s, g, HostOptions{})
		if err := h.AddEngine("INE", func() core.GPhi { return core.NewINE(g) }); err != nil {
			t.Fatal(err)
		}
		cl.hosts = append(cl.hosts, h)
		transports[s] = InProc{Host: h}
	}
	cl.coord, err = NewCoordinator(plan, transports, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func testQueries(n int) []*Request {
	reqs := []*Request{
		{P: []graph.NodeID{3, 40, 77, 120, 199}, Q: []graph.NodeID{10, 55, 180}, Phi: 1.0, Agg: "max", K: 2},
		{P: []graph.NodeID{1, 17, 63, 88, 140, 201, 230}, Q: []graph.NodeID{5, 99, 150, 222}, Phi: 0.5, Agg: "sum", K: 3},
		{P: []graph.NodeID{9, 31, 52, 74, 96, 118, 160, 240}, Q: []graph.NodeID{12, 200}, Phi: 1.0, Agg: "sum", Algo: "rlist", K: 1},
		{P: []graph.NodeID{0, 50, 100, 150, 200, 250}, Q: []graph.NodeID{25, 75, 125, 175}, Phi: 0.25, Agg: "max", Algo: "gd", K: 4},
	}
	for _, r := range reqs {
		for i, p := range r.P {
			r.P[i] = p % graph.NodeID(n)
		}
		for i, q := range r.Q {
			r.Q[i] = q % graph.NodeID(n)
		}
	}
	return reqs
}

// The coordinated answer must match single-process brute force exactly,
// at every shard count — the scatter/bound/prune/merge pipeline is a
// distribution strategy, not an approximation.
func TestCoordinatorExactVsBrute(t *testing.T) {
	const nodes = 260
	for _, S := range []int{1, 2, 4} {
		cl := newTestCluster(t, nodes, 21, S, CoordinatorOptions{})
		for qi, req := range testQueries(nodes) {
			res, err := cl.coord.Execute(context.Background(), req, nil)
			if err != nil {
				t.Fatalf("S=%d query %d: %v", S, qi, err)
			}
			agg := core.Max
			if req.Agg == "sum" {
				agg = core.Sum
			}
			want, err := core.KBrute(cl.g, core.Query{P: req.P, Q: req.Q, Phi: req.Phi, Agg: agg}, req.K)
			if err != nil {
				t.Fatalf("S=%d query %d brute: %v", S, qi, err)
			}
			if len(res.Answers) != len(want) {
				t.Fatalf("S=%d query %d: %d answers, want %d", S, qi, len(res.Answers), len(want))
			}
			for i := range want {
				if math.Abs(res.Answers[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
					t.Errorf("S=%d query %d answer %d: dist %v, want %v",
						S, qi, i, res.Answers[i].Dist, want[i].Dist)
				}
			}
			if res.Degraded || len(res.DownShards) != 0 {
				t.Fatalf("S=%d query %d: unexpected degradation %+v", S, qi, res)
			}
			if res.Contacted+res.Pruned > S {
				t.Fatalf("S=%d query %d: contacted %d + pruned %d > S", S, qi, res.Contacted, res.Pruned)
			}
		}
	}
}

// With MaxFanout 1 the coordinator visits shards one at a time in bound
// order, so a query whose best candidate sits at distance 0 must prune
// every shard with a positive bound. The test searches the fixed graph
// for such a query (a P-object that is itself a Q member) rather than
// hard-coding node ids.
func TestCoordinatorPrunes(t *testing.T) {
	const nodes = 260
	cl := newTestCluster(t, nodes, 21, 4, CoordinatorOptions{MaxFanout: 1})
	for v := 0; v < nodes; v++ {
		q := graph.NodeID(v)
		// P: the Q member itself plus one vertex per other shard.
		P := []graph.NodeID{q}
		home := cl.plan.ShardOf(q)
		prunable := 0
		for s := 0; s < cl.plan.Shards(); s++ {
			if s == home || len(cl.plan.Group(s)) == 0 {
				continue
			}
			P = append(P, cl.plan.Group(s)[0])
			if cl.plan.Bound(s, []graph.NodeID{q}, 1, core.Max) > 0 {
				prunable++
			}
		}
		if prunable == 0 {
			continue // bounds too loose for this q; try another vertex
		}
		res, err := cl.coord.Execute(context.Background(), &Request{
			P: P, Q: []graph.NodeID{q}, Phi: 1.0, Agg: "max", K: 1,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Answers[0].Dist != 0 || res.Answers[0].P != q {
			t.Fatalf("expected distance-0 answer at %d, got %+v", q, res.Answers[0])
		}
		if res.Pruned < prunable {
			t.Fatalf("pruned %d shards, want ≥ %d (contacted %d)", res.Pruned, prunable, res.Contacted)
		}
		return
	}
	t.Fatal("no vertex produced a positive bound on any foreign shard — bounds are vacuous")
}

// failingTransport simulates an unreachable shard host.
type failingTransport struct{ target string }

func (f failingTransport) Target() string { return f.target }
func (f failingTransport) Call(context.Context, *Request) (*Response, error) {
	return nil, &Error{Status: http.StatusServiceUnavailable, Code: "overloaded", RetryAfter: 7, Msg: "connection refused"}
}

// newDegradedCluster builds an S-shard cluster with one shard replaced
// by an always-failing transport.
func newDegradedCluster(t *testing.T, nodes int, seed int64, shards, downShard int) *cluster {
	t.Helper()
	cl := newTestCluster(t, nodes, seed, shards, CoordinatorOptions{
		Retry: &resil.RetryPolicy{Attempts: 1},
	})
	transports := make([]Transport, shards)
	for s := 0; s < shards; s++ {
		transports[s] = InProc{Host: cl.hosts[s]}
	}
	transports[downShard] = failingTransport{target: "inproc:dead"}
	var err error
	cl.coord, err = NewCoordinator(cl.plan, transports, CoordinatorOptions{
		Retry: &resil.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// Killing one shard must degrade, not corrupt: the answer is stamped
// Degraded and equals brute force over P minus the dead shard's objects.
func TestCoordinatorDegradedPartialResults(t *testing.T) {
	const nodes, S, dead = 260, 4, 1
	cl := newDegradedCluster(t, nodes, 21, S, dead)
	req := testQueries(nodes)[1]
	res, err := cl.coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("result not stamped degraded")
	}
	if len(res.DownShards) != 1 || res.DownShards[0] != dead {
		t.Fatalf("DownShards = %v, want [%d]", res.DownShards, dead)
	}
	var reachable []graph.NodeID
	for _, p := range req.P {
		if cl.plan.ShardOf(p) != dead {
			reachable = append(reachable, p)
		}
	}
	if len(reachable) == len(req.P) {
		t.Skip("dead shard owned no P-objects for this query; pick another seed")
	}
	want, err := core.KBrute(cl.g, core.Query{P: reachable, Q: req.Q, Phi: req.Phi, Agg: core.Sum}, req.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(want) {
		t.Fatalf("%d answers, want %d", len(res.Answers), len(want))
	}
	for i := range want {
		if math.Abs(res.Answers[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Errorf("answer %d: dist %v, want %v", i, res.Answers[i].Dist, want[i].Dist)
		}
	}
}

// Repeated failures must open the dead shard's breaker, and /readyz must
// report the cluster degraded (but still 200: partial service).
func TestCoordinatorBreakerOpensAndReadyz(t *testing.T) {
	const nodes, S, dead = 260, 4, 2
	cl := newDegradedCluster(t, nodes, 21, S, dead)
	req := testQueries(nodes)[0]
	for i := 0; i < 4; i++ { // threshold is 3
		if _, err := cl.coord.Execute(context.Background(), req, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := cl.coord.BreakerState(dead); st != resil.Open {
		t.Fatalf("dead shard breaker = %v, want Open", st)
	}
	rr := httptest.NewRecorder()
	cl.coord.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz = %d with healthy shards remaining", rr.Code)
	}
	if body := rr.Body.String(); !contains(body, `"status":"degraded"`) {
		t.Fatalf("/readyz body missing degraded status: %s", body)
	}
}

// Every shard down: the coordinator relays the overload fault (503 +
// Retry-After) instead of inventing a 500 or a wrong empty answer.
func TestCoordinatorAllShardsDown(t *testing.T) {
	const nodes, S = 260, 2
	cl := newTestCluster(t, nodes, 21, S, CoordinatorOptions{})
	transports := make([]Transport, S)
	for s := range transports {
		transports[s] = failingTransport{target: "inproc:dead"}
	}
	coord, err := NewCoordinator(cl.plan, transports, CoordinatorOptions{
		Retry: &resil.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Execute(context.Background(), testQueries(nodes)[0], nil)
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *shard.Error", err)
	}
	if se.Status != http.StatusServiceUnavailable || se.Code != "overloaded" {
		t.Fatalf("relayed {%d %s}, want {503 overloaded}", se.Status, se.Code)
	}
	if se.RetryAfter != 7 {
		t.Fatalf("Retry-After %d not preserved from shard fault", se.RetryAfter)
	}
}

// The HTTP transport must behave identically to InProc: same answers,
// same taxonomy — proven by running a real host behind httptest.
func TestHTTPTransportRoundTrip(t *testing.T) {
	const nodes, S = 260, 2
	g, tr := testGraph(t, nodes, 21)
	plan, err := NewPlan(g, tr, PlanOptions{Shards: S})
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]Transport, S)
	for s := 0; s < S; s++ {
		h := NewHost(s, g, HostOptions{})
		if err := h.AddEngine("INE", func() core.GPhi { return core.NewINE(g) }); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h.Handler())
		defer srv.Close()
		transports[s] = &HTTPTransport{URL: srv.URL, Client: srv.Client()}
	}
	coord, err := NewCoordinator(plan, transports, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := testQueries(nodes)[0]
	res, err := coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KBrute(g, core.Query{P: req.P, Q: req.Q, Phi: req.Phi, Agg: core.Max}, req.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(want) {
		t.Fatalf("%d answers over HTTP, want %d", len(res.Answers), len(want))
	}
	for i := range want {
		if math.Abs(res.Answers[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Errorf("answer %d: dist %v, want %v", i, res.Answers[i].Dist, want[i].Dist)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
