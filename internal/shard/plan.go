package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/gtree"
	"fannr/internal/sp"
)

// PlanOptions configures partitioning.
type PlanOptions struct {
	// Shards is S, the number of partitions (required, ≥ 1).
	Shards int
	// Landmarks is the number of landmark distance vectors backing the
	// shard-level lower bounds (default 8, the ALT default). More
	// landmarks tighten the bounds at |V|·L floats of memory.
	Landmarks int
}

// Plan is the immutable sharding contract the coordinator and the
// partitioner agree on: which shard owns which vertices (and therefore
// which P-objects), plus the landmark summaries that turn a query's Q
// into a per-shard lower bound on any g_φ achievable inside the shard.
//
// The graph itself is replicated on every shard host — exact network
// distances need the whole graph, and graphs are the small, static part
// of the state; it is the object workload and the engine compute that
// shard. Ownership follows gtree.PartitionK: each shard is a run of
// consecutive partition-tree leaves, so shards inherit the balanced
// small-cut geometry the G-tree's bisection already paid for.
type Plan struct {
	g *graph.Graph
	// Epoch fingerprints the topology (graph identity, S, group
	// boundaries). It is stamped into coordinator cache keys so a
	// resharded deployment can never serve results cached under the old
	// cut.
	Epoch uint64

	groups  [][]graph.NodeID
	shardOf []int32

	// Landmark summaries: land[l][v] = d(landmark_l, v); lmin/lmax[l][s]
	// envelope d(landmark_l, ·) over shard s's vertices.
	land       [][]float64
	lmin, lmax [][]float64

	// Per-shard coordinate bounding boxes (when the graph has
	// coordinates) add a geometric lower bound alongside the landmarks.
	bbox      []box
	hasCoords bool
}

type box struct{ minX, minY, maxX, maxY float64 }

// NewPlan cuts g into opts.Shards groups along the partition tree and
// precomputes the landmark summaries.
func NewPlan(g *graph.Graph, tree *gtree.Tree, opts PlanOptions) (*Plan, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: plan needs ≥ 1 shard, got %d", opts.Shards)
	}
	if tree.Graph() != g {
		return nil, fmt.Errorf("shard: partition tree was built over a different graph")
	}
	if opts.Landmarks < 1 {
		opts.Landmarks = 8
	}
	p := &Plan{
		g:         g,
		groups:    tree.PartitionK(opts.Shards),
		shardOf:   make([]int32, g.NumNodes()),
		hasCoords: g.HasCoords(),
	}
	for s, grp := range p.groups {
		for _, v := range grp {
			p.shardOf[v] = int32(s)
		}
	}
	p.Epoch = p.fingerprint()
	p.buildLandmarks(opts.Landmarks)
	if p.hasCoords {
		p.buildBoxes()
	}
	return p, nil
}

// fingerprint hashes the topology: graph identity, S, and every group
// boundary. Deterministic across processes (FNV, no random seeds), so a
// coordinator restarted over the same cut keeps the same epoch and a
// different cut can never collide into serving stale cached results.
func (p *Plan) fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	write := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	h.Write([]byte(p.g.Name()))
	write(uint64(p.g.NumNodes()))
	write(uint64(len(p.groups)))
	for _, grp := range p.groups {
		write(uint64(len(grp)))
		if len(grp) > 0 {
			write(uint64(grp[0]))
			write(uint64(grp[len(grp)-1]))
		}
	}
	return h.Sum64()
}

// buildLandmarks picks landmarks by farthest-point sampling (the ALT
// strategy) and envelopes each distance vector per shard.
func (p *Plan) buildLandmarks(count int) {
	n := p.g.NumNodes()
	d := sp.NewDijkstra(p.g)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	cur := graph.NodeID(0)
	for len(p.land) < count {
		vec := d.All(cur)
		p.land = append(p.land, vec)
		far, farDist := cur, -1.0
		for v := 0; v < n; v++ {
			if math.IsInf(vec[v], 1) {
				continue
			}
			if vec[v] < minDist[v] {
				minDist[v] = vec[v]
			}
			if minDist[v] > farDist {
				farDist = minDist[v]
				far = graph.NodeID(v)
			}
		}
		if far == cur {
			break // graph exhausted
		}
		cur = far
	}
	S := len(p.groups)
	p.lmin = make([][]float64, len(p.land))
	p.lmax = make([][]float64, len(p.land))
	for l, vec := range p.land {
		mins, maxs := make([]float64, S), make([]float64, S)
		for s := range p.groups {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range p.groups[s] {
				dv := vec[v]
				if dv < lo {
					lo = dv
				}
				if dv > hi {
					hi = dv
				}
			}
			mins[s], maxs[s] = lo, hi
		}
		p.lmin[l], p.lmax[l] = mins, maxs
	}
}

func (p *Plan) buildBoxes() {
	p.bbox = make([]box, len(p.groups))
	for s, grp := range p.groups {
		bb := box{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
		for _, v := range grp {
			x, y := p.g.Coord(v)
			bb.minX, bb.maxX = math.Min(bb.minX, x), math.Max(bb.maxX, x)
			bb.minY, bb.maxY = math.Min(bb.minY, y), math.Max(bb.maxY, y)
		}
		p.bbox[s] = bb
	}
}

// Shards returns S.
func (p *Plan) Shards() int { return len(p.groups) }

// Graph returns the partitioned graph.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Group returns the vertices shard s owns (do not mutate).
func (p *Plan) Group(s int) []graph.NodeID { return p.groups[s] }

// ShardOf returns the shard owning vertex v.
func (p *Plan) ShardOf(v graph.NodeID) int { return int(p.shardOf[v]) }

// SplitP routes a P-object set to its owning shards: out[s] holds the
// members of P whose vertex shard s owns (the occurrence-list routing of
// the coordinator's scatter phase).
func (p *Plan) SplitP(P []graph.NodeID) [][]graph.NodeID {
	out := make([][]graph.NodeID, len(p.groups))
	for _, v := range P {
		s := p.shardOf[v]
		out[s] = append(out[s], v)
	}
	return out
}

// LowerBound returns a lower bound on d(p, q) valid for every vertex p
// that shard s owns. Per landmark l the triangle inequality gives
// d(p,q) ≥ max(d(l,q) − maxᵥ d(l,v), minᵥ d(l,v) − d(l,q), 0) with the
// envelope taken over the shard's vertices; the bound is the max over
// landmarks, further maxed with the scaled Euclidean distance from q to
// the shard's bounding box when coordinates exist. Empty shards bound
// to +Inf (no candidate can live there).
func (p *Plan) LowerBound(s int, q graph.NodeID) float64 {
	if len(p.groups[s]) == 0 {
		return math.Inf(1)
	}
	best := 0.0
	for l, vec := range p.land {
		dq := vec[q]
		lo, hi := p.lmin[l][s], p.lmax[l][s]
		if math.IsInf(dq, 1) {
			if !math.IsInf(hi, 1) {
				// q unreachable from l while the whole shard is
				// reachable: in an undirected graph q is then
				// unreachable from every shard vertex.
				return math.Inf(1)
			}
			continue
		}
		if b := dq - hi; b > best {
			best = b
		}
		if b := lo - dq; b > best {
			best = b
		}
	}
	if p.hasCoords {
		bb := p.bbox[s]
		x, y := p.g.Coord(q)
		dx := math.Max(0, math.Max(bb.minX-x, x-bb.maxX))
		dy := math.Max(0, math.Max(bb.minY-y, y-bb.maxY))
		if dx > 0 || dy > 0 {
			if b := p.g.ScaleEuclid(math.Hypot(dx, dy)); b > best {
				best = b
			}
		}
	}
	return best
}

// Bound returns a lower bound on g_φ(p, Q) over every p in shard s,
// where k = ⌈φ|Q|⌉ is the aggregate's subset size. For any p the k
// distances entering g_φ are the k smallest of {d(p,q) : q ∈ Q}, and
// d(p,qᵢ) ≥ lbᵢ pointwise, so the aggregate over the k smallest true
// distances is at least the aggregate over the k smallest lower bounds
// (order statistics are monotone under pointwise domination). Pruning a
// shard whose Bound ≥ the current k-th best g_φ therefore never
// discards an improving candidate — the exactness argument in DESIGN.md
// §17.
func (p *Plan) Bound(s int, Q []graph.NodeID, k int, agg core.Aggregate) float64 {
	if len(p.groups[s]) == 0 {
		return math.Inf(1)
	}
	if k > len(Q) {
		k = len(Q)
	}
	if k < 1 {
		k = 1
	}
	lbs := make([]float64, len(Q))
	for i, q := range Q {
		lbs[i] = p.LowerBound(s, q)
	}
	sort.Float64s(lbs)
	if agg == core.Max {
		return lbs[k-1]
	}
	sum := 0.0
	for _, b := range lbs[:k] {
		sum += b
	}
	return sum
}
