package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/gtree"
	"fannr/internal/lifecycle"
	"fannr/internal/resil"
)

// postCoord posts a raw body to a coordinator handler and returns the
// status, the Retry-After header, and the decoded error shape.
func postCoord(t *testing.T, h http.Handler, body string) (int, string, ErrorResponse) {
	t.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/fann", bytes.NewReader([]byte(body)))
	h.ServeHTTP(rr, req)
	var e ErrorResponse
	_ = json.NewDecoder(rr.Body).Decode(&e)
	return rr.Code, rr.Header().Get("Retry-After"), e
}

// TestCoordinatorErrorTaxonomy mirrors the single-process server's error
// suite through the scatter-gather front end: every failure class keeps
// the same {status, code} whether the query is served directly or
// coordinated. Runs over a disconnected two-component graph so 404s are
// producible alongside the 400s.
func TestCoordinatorErrorTaxonomy(t *testing.T) {
	b := graph.NewBuilder(6)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(3, 4, 1)
	_ = b.AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := gtree.Build(g, gtree.Options{MaxLeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(g, tree, PlanOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]Transport, 2)
	for s := 0; s < 2; s++ {
		h := NewHost(s, g, HostOptions{})
		if err := h.AddEngine("INE", func() core.GPhi { return core.NewINE(g) }); err != nil {
			t.Fatal(err)
		}
		transports[s] = InProc{Host: h}
	}
	coord, err := NewCoordinator(plan, transports, CoordinatorOptions{
		Retry: &resil.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := coord.Handler()

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed json", `{"p":[1,2`, http.StatusBadRequest, "invalid"},
		{"wrong field type", `{"p":"not-a-list"}`, http.StatusBadRequest, "invalid"},
		{"empty P", `{"p":[],"q":[0,1],"phi":0.5}`, http.StatusBadRequest, "invalid"},
		{"empty Q", `{"p":[0],"q":[],"phi":0.5}`, http.StatusBadRequest, "invalid"},
		{"phi zero", `{"p":[0],"q":[1],"phi":0}`, http.StatusBadRequest, "invalid"},
		{"phi above one", `{"p":[0],"q":[1],"phi":1.5}`, http.StatusBadRequest, "invalid"},
		{"node out of range", `{"p":[0,1073741824],"q":[1],"phi":0.5}`, http.StatusBadRequest, "invalid"},
		{"unknown aggregate", `{"p":[0],"q":[1],"phi":0.5,"agg":"median"}`, http.StatusBadRequest, "invalid"},
		{"unknown algorithm", `{"p":[0],"q":[1],"phi":0.5,"algo":"psychic"}`, http.StatusBadRequest, "invalid"},
		{"unknown engine relayed from shard", `{"p":[0],"q":[1],"phi":0.5,"engine":"warp"}`, http.StatusBadRequest, "invalid"},
		{"unreachable phi-subset", `{"p":[0],"q":[3,4,5],"phi":1}`, http.StatusNotFound, "not_found"},
		{"unreachable across components", `{"p":[0,1],"q":[5],"phi":1,"algo":"rlist"}`, http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, e := postCoord(t, h, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (error %+v)", status, tc.status, e)
			}
			if e.Code != tc.code {
				t.Fatalf("code %q, want %q (error %q)", e.Code, tc.code, e.Error)
			}
			if e.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}

	// Control: the same coordinator still answers a valid query, and the
	// answers field is a list even when empty elsewhere.
	rr := httptest.NewRecorder()
	rr2 := httptest.NewRequest("POST", "/fann", strings.NewReader(`{"p":[0,2],"q":[1,2],"phi":1}`))
	h.ServeHTTP(rr, rr2)
	if rr.Code != http.StatusOK {
		t.Fatalf("control query: status %d body %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), `"answers":[`) {
		t.Fatalf("answers not a list: %s", rr.Body.String())
	}
}

// A shard shedding load (503 + Retry-After) must leave the coordinator
// as a 503 with the same taxonomy code and a Retry-After header — never
// flattened into a generic 500. This was the satellite-fix contract.
func TestCoordinatorRelaysShardSheds(t *testing.T) {
	const nodes = 260
	for _, tc := range []struct {
		name     string
		checkErr error
		code     string
	}{
		{"quarantined holder", lifecycle.ErrUnavailable, "overloaded"},
		{"index fault", &lifecycle.IndexFault{Index: "phl", Addr: 0xdead, Cause: "SIGBUS"}, "index_fault"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, tree := testGraph(t, nodes, 21)
			plan, err := NewPlan(g, tree, PlanOptions{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			transports := make([]Transport, 2)
			for s := 0; s < 2; s++ {
				h := NewHost(s, g, HostOptions{
					Check: func() error { return tc.checkErr },
				})
				if err := h.AddEngine("INE", func() core.GPhi { return core.NewINE(g) }); err != nil {
					t.Fatal(err)
				}
				transports[s] = InProc{Host: h}
			}
			coord, err := NewCoordinator(plan, transports, CoordinatorOptions{
				Retry: &resil.RetryPolicy{Attempts: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			status, retryAfter, e := postCoord(t, coord.Handler(),
				`{"p":[1,2,3,100,200],"q":[5,50],"phi":1}`)
			if status != http.StatusServiceUnavailable {
				t.Fatalf("status %d, want 503 (error %+v)", status, e)
			}
			if e.Code != tc.code {
				t.Fatalf("code %q, want %q", e.Code, tc.code)
			}
			if retryAfter == "" || retryAfter == "0" {
				t.Fatalf("Retry-After %q not propagated", retryAfter)
			}
		})
	}
}

// One dead shard is a 200 with the degraded stamp, not an error: partial
// answers are explicit, never silent, never fatal.
func TestCoordinatorHandlerDegraded(t *testing.T) {
	const nodes = 260
	cl := newDegradedCluster(t, nodes, 21, 4, 1)
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/fann",
		strings.NewReader(`{"p":[1,17,63,88,140,201,230],"q":[5,99,150,222],"phi":0.5,"agg":"sum","k":3}`))
	cl.coord.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rr.Code, rr.Body.String())
	}
	var resp FANNResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || len(resp.DegradedShards) != 1 || resp.DegradedShards[0] != 1 {
		t.Fatalf("degraded stamp missing: %+v", resp)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers despite three healthy shards")
	}
}
