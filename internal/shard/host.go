package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/qcache"
)

// HostOptions configures one shard host.
type HostOptions struct {
	// PoolCapacity bounds each engine pool's free list (default 2).
	PoolCapacity int
	// Limits is the pool admission policy (zero = EnginePool defaults).
	Limits core.PoolLimits
	// CacheEntries sizes the host-local result cache (0 disables it).
	CacheEntries int
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
	// Check, when set, gates every request: a lifecycle error returned
	// here (ErrUnavailable, IndexFault) surfaces with the index-fault /
	// overloaded taxonomy before any engine is touched. This is where a
	// host built over reloadable indexes plugs its holder state in.
	Check func() error
}

// Host serves one shard: the full engine set over the (replicated)
// graph, answering FANN queries restricted to the P-objects the
// coordinator routes here. It is the single-process server's serving
// core — pool admission, result cache, taxonomy — behind the framed
// shard RPC instead of the public JSON API.
type Host struct {
	ID    int
	g     *graph.Graph
	opts  HostOptions
	pools map[string]*core.EnginePool
	order []string
	cache *qcache.Cache
}

// NewHost creates a host over g. Engines are added with AddEngine.
func NewHost(id int, g *graph.Graph, opts HostOptions) *Host {
	if opts.PoolCapacity < 1 {
		opts.PoolCapacity = 2
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	h := &Host{ID: id, g: g, opts: opts, pools: map[string]*core.EnginePool{}}
	if opts.CacheEntries > 0 {
		h.cache = qcache.New(qcache.Config{MaxEntries: opts.CacheEntries})
	}
	return h
}

// AddEngine registers a named engine pool.
func (h *Host) AddEngine(name string, factory core.EngineFactory) error {
	if _, dup := h.pools[name]; dup {
		return fmt.Errorf("shard: host %d: duplicate engine %q", h.ID, name)
	}
	h.pools[name] = core.NewBoundedEnginePool(name, h.opts.PoolCapacity, h.opts.Limits, factory)
	h.order = append(h.order, name)
	return nil
}

// Engines lists the registered engine names in registration order.
func (h *Host) Engines() []string { return append([]string(nil), h.order...) }

func (h *Host) retryAfterSecs() int {
	secs := int(h.opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Execute answers one shard RPC. An empty P (the coordinator routed no
// objects here) and a query whose best candidate is unreachable both
// return an empty Answers list: per-shard "nothing found" is a
// successful empty reply — only the coordinator, seeing every shard, can
// declare the global query unanswerable. Errors come back classified
// (see Classify) so both transports preserve the taxonomy.
func (h *Host) Execute(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	if h.opts.Check != nil {
		if err := h.opts.Check(); err != nil {
			return nil, Classify(err, h.retryAfterSecs())
		}
	}
	if len(req.P) == 0 {
		return &Response{Engine: req.Engine}, nil
	}
	q := core.Query{P: req.P, Q: req.Q, Phi: req.Phi}
	switch req.Agg {
	case "", "max":
		q.Agg = core.Max
	case "sum":
		q.Agg = core.Sum
	default:
		return nil, Classify(fmt.Errorf("%w: unknown aggregate %q", core.ErrInvalid, req.Agg), 0)
	}
	if !core.KnownAlgo(req.Algo) {
		return nil, Classify(fmt.Errorf("%w: unknown algorithm %q", core.ErrInvalid, req.Algo), 0)
	}
	if err := q.Validate(h.g); err != nil {
		return nil, Classify(err, 0)
	}
	k := req.K
	if k < 1 {
		k = 1
	}
	engine := req.Engine
	if engine == "" {
		engine = h.order[0]
	}
	pool, ok := h.pools[engine]
	if !ok {
		return nil, Classify(fmt.Errorf("%w: unknown engine %q", core.ErrInvalid, engine), 0)
	}

	algo := req.Algo
	if algo == "" {
		algo = "gd"
	}
	var rkey qcache.ResultKey
	if h.cache != nil {
		rkey = qcache.ResultKey{
			Engine: engine, Algo: algo, Agg: q.Agg, Phi: q.Phi, K: k,
			P: qcache.FingerprintNodes(q.P), Q: qcache.FingerprintNodes(q.Q),
		}
		if answers, hit := h.cache.GetResult(rkey); hit {
			resp := h.respond(engine, answers, start)
			resp.CacheHit = true
			return resp, nil
		}
	}

	gp, err := pool.Acquire(ctx)
	if err != nil {
		return nil, Classify(err, h.retryAfterSecs())
	}
	answers, err := h.dispatch(pool, gp, algo, q, k)
	if errors.Is(err, core.ErrNoResult) {
		return h.respond(engine, nil, start), nil
	}
	if err != nil {
		return nil, Classify(err, h.retryAfterSecs())
	}
	if h.cache != nil {
		h.cache.PutResult(rkey, answers)
	}
	return h.respond(engine, answers, start), nil
}

// dispatch runs the algorithm and returns the engine to its pool; a
// panicking engine is discarded (capacity is restored with a fresh
// instance) and surfaces as an internal fault, never a crash.
func (h *Host) dispatch(pool *core.EnginePool, gp core.GPhi, algo string, q core.Query, k int) (answers []core.Answer, err error) {
	finished := false
	defer func() {
		if r := recover(); r != nil {
			pool.Discard()
			answers = nil
			err = fmt.Errorf("shard: engine panic: %v\n%s", r, debug.Stack())
			return
		}
		if !finished {
			pool.Discard()
		} else {
			pool.Release(gp)
		}
	}()
	answers, err = core.Dispatch(h.g, algo, gp, q, k)
	finished = true
	return answers, err
}

func (h *Host) respond(engine string, answers []core.Answer, start time.Time) *Response {
	resp := &Response{Engine: engine, Micros: time.Since(start).Microseconds()}
	for _, a := range answers {
		resp.Answers = append(resp.Answers, Answer{
			P: a.P, Dist: a.Dist, Subset: append([]graph.NodeID(nil), a.Subset...),
		})
	}
	return resp
}

// Handler serves the shard RPC:
//
//	POST /shard/fann — framed Request → framed Response
//	GET  /shard/healthz — liveness + the Check hook's verdict
//
// Error responses are plain JSON {error, code} with the HTTP status from
// the taxonomy and Retry-After on sheds — byte-compatible with the
// public server's error surface, which is what lets the coordinator
// relay them without translation.
func (h *Host) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/fann", h.handleFANN)
	mux.HandleFunc("GET /shard/healthz", h.handleHealthz)
	return mux
}

func (h *Host) handleFANN(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFramePayload+frameHeader+frameTrailer))
	if err != nil {
		h.fail(w, Classify(fmt.Errorf("%w: reading frame: %s", ErrCodec, err), 0))
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		h.fail(w, Classify(err, 0))
		return
	}
	resp, err := h.Execute(r.Context(), req)
	if err != nil {
		h.fail(w, Classify(err, h.retryAfterSecs()))
		return
	}
	frame, err := EncodeResponse(resp)
	if err != nil {
		h.fail(w, Classify(err, 0))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fannr-Shard", strconv.Itoa(h.ID))
	w.WriteHeader(http.StatusOK)
	w.Write(frame)
}

func (h *Host) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if h.opts.Check != nil {
		if err := h.opts.Check(); err != nil {
			h.fail(w, Classify(err, h.retryAfterSecs()))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"shard\":%d,\"engines\":%d}\n", h.ID, len(h.pools))
}

// fail writes a classified error with the taxonomy body and headers.
func (h *Host) fail(w http.ResponseWriter, se *Error) {
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.Status)
	fmt.Fprintf(w, "{\"error\":%s,\"code\":%s}\n", jsonString(se.Msg), jsonString(se.Code))
}

// jsonString quotes s as a JSON string.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// sortAnswers keeps merged answer lists ordered by distance then node id
// (shared by the coordinator's merge).
func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Dist != answers[j].Dist {
			return answers[i].Dist < answers[j].Dist
		}
		return answers[i].P < answers[j].P
	})
}
