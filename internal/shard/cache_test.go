package shard

import (
	"context"
	"testing"
)

// The coordinator's exact cache is keyed by engine@shards:<epoch>:<mask>.
// A topology change — here a shard dropping out of rotation — must make
// every previously cached result unreachable, and degraded results must
// never enter the cache at all.
func TestCoordinatorCacheTopologyInvalidation(t *testing.T) {
	const nodes = 260
	cl := newTestCluster(t, nodes, 21, 4, CoordinatorOptions{CacheEntries: 64})
	req := testQueries(nodes)[0]

	cold, err := cl.coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("cold query reported a cache hit")
	}
	warm, err := cl.coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("identical query under identical topology missed the cache")
	}
	if len(warm.Answers) != len(cold.Answers) || warm.Answers[0].Dist != cold.Answers[0].Dist {
		t.Fatalf("cached answers diverge: %+v vs %+v", warm.Answers, cold.Answers)
	}

	// Take a shard out of rotation: the healthy mask changes, so the
	// cached entry (keyed under the old mask) must not be served.
	down := cl.plan.ShardOf(req.P[0])
	cl.coord.TripShard(down)
	after, err := cl.coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("query served from cache across a topology change")
	}
	if !after.Degraded {
		t.Fatalf("tripped shard %d owned req.P[0] yet result is not degraded", down)
	}

	// Degraded results are never cached: repeating the query under the
	// degraded topology recomputes again.
	again, err := cl.coord.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("degraded result was cached")
	}
}
