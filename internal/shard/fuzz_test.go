package shard

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fannr/internal/graph"
)

// FuzzShardRPC drives the frame codec with arbitrary bytes: forged
// lengths, truncation, version skew, checksum damage — every input must
// either decode cleanly or error; a panic fails the fuzz run. For inputs
// that do decode, re-encoding the payload must reproduce the input
// byte-for-byte (the codec is canonical), so a mutation that survives
// decoding but changes meaning is impossible.
func FuzzShardRPC(f *testing.F) {
	seedReq, _ := EncodeRequest(&Request{
		P: []graph.NodeID{1, 2, 3}, Q: []graph.NodeID{4, 5}, Phi: 0.5,
		Agg: "sum", Algo: "rlist", Engine: "PHL", K: 3,
	})
	seedResp, _ := EncodeResponse(&Response{
		Answers: []Answer{{P: 9, Dist: 2.5, Subset: []graph.NodeID{4}}}, Engine: "PHL", Micros: 17,
	})
	f.Add(seedReq)
	f.Add(seedResp)
	f.Add([]byte{})
	f.Add([]byte("FSRP"))
	// Version-skew seed: a well-formed frame stamped v2.
	skew := append([]byte(nil), seedReq...)
	binary.BigEndian.PutUint16(skew[4:], CodecVersion+1)
	f.Add(skew)
	// Forged-length seed: header claims 1 GiB.
	forged := append([]byte(nil), seedReq...)
	binary.BigEndian.PutUint32(forged[8:], 1<<30)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeFrame(data)
		if err != nil {
			return // rejected, and did not panic — that is the contract
		}
		reframed, err := EncodeFrame(payload)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(reframed, data) {
			t.Fatalf("codec not canonical: %d bytes in, %d bytes re-encoded", len(data), len(reframed))
		}
		// The JSON layer must also never panic, whatever the payload.
		_, _ = DecodeRequest(data)
		_, _ = DecodeResponse(data)
	})
}
