package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"fannr/internal/core"
	"fannr/internal/lifecycle"
)

// Error is the typed fault a transport hands the coordinator: the HTTP
// status and stable taxonomy code a shard (or the transport itself)
// produced, plus the Retry-After hint when the shard shed load. Keeping
// the triple intact end-to-end is what lets the coordinator re-emit a
// shard's 503 as a coordinator 503 with the same code and Retry-After —
// a shard overload surfacing as a coordinator "internal" 500 would tell
// clients to stop retrying exactly when retrying is right.
type Error struct {
	Status     int    // HTTP status
	Code       string // stable taxonomy code ("overloaded", "timeout", ...)
	RetryAfter int    // seconds; > 0 only on shed responses
	Msg        string
}

func (e *Error) Error() string {
	return fmt.Sprintf("shard: %s (%d %s)", e.Msg, e.Status, e.Code)
}

// Retryable reports whether the coordinator may retry the call: server
// faults and overloads are retryable, client faults (4xx) are not.
func (e *Error) Retryable() bool { return e.Status >= 500 }

// Classify maps any error into the serving taxonomy, mirroring the HTTP
// server's errStatus so a query answered through the coordinator fails
// with the same {status, code} it would have failed with served
// directly. retryAfter is attached to overload-class faults.
func Classify(err error, retryAfter int) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se // already classified by a lower layer
	}
	status, code := http.StatusInternalServerError, "internal"
	var ifault *lifecycle.IndexFault
	switch {
	case errors.As(err, &ifault):
		status, code = http.StatusServiceUnavailable, "index_fault"
	case errors.Is(err, lifecycle.ErrUnavailable):
		status, code = http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, core.ErrInvalid), errors.Is(err, ErrCodec):
		status, code = http.StatusBadRequest, "invalid"
	case errors.Is(err, core.ErrNoResult):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, core.ErrSaturated):
		status, code = http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		status, code = http.StatusGatewayTimeout, "timeout"
	}
	e := &Error{Status: status, Code: code, Msg: err.Error()}
	if status == http.StatusServiceUnavailable {
		if retryAfter < 1 {
			retryAfter = 1
		}
		e.RetryAfter = retryAfter
	}
	return e
}
