package shard

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"fannr/internal/core"
	"fannr/internal/obs"
	"fannr/internal/qcache"
	"fannr/internal/resil"
)

// CoordinatorOptions configures the scatter-gather front end.
type CoordinatorOptions struct {
	// DefaultEngine is used when a request names none (default "INE").
	DefaultEngine string
	// BreakerThreshold / BreakerCooldown configure the per-shard circuit
	// breakers (defaults 3 failures / 5s; threshold < 0 disables).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Retry is the per-call retry policy (default: 2 attempts, 10ms
	// base, 100ms cap, 0.2 jitter). Client-fault responses (4xx) are
	// never retried.
	Retry *resil.RetryPolicy
	// MaxFanout bounds concurrent shard calls per wave (default 4).
	// Scattering in bound-ordered waves is what lets early answers
	// tighten the k-th distance and prune later shards.
	MaxFanout int
	// RetryAfter is the hint attached to coordinator sheds (default 1s).
	RetryAfter time.Duration
	// CacheEntries sizes the coordinator's exact-result cache (0
	// disables). Keys are stamped with the plan epoch and the healthy
	// shard set, so resharding or a shard dropping out invalidates
	// everything cached under the old topology.
	CacheEntries int
	// Registry receives the fannr_shard_* metrics (nil = no metrics).
	Registry *obs.Registry
}

// Result is one coordinated query's outcome.
type Result struct {
	Answers []Answer
	Engine  string
	// Degraded is set when at least one shard holding candidates could
	// not be reached: the answers are exact over the reachable shards'
	// objects — a correct upper bound on the true optimum, stamped so
	// the caller knows candidates may be missing, never silently wrong.
	Degraded   bool
	DownShards []int
	Contacted  int
	Pruned     int
	CacheHit   bool
	Micros     int64
}

// Coordinator fans FANN queries over the shard set: split P by
// ownership, bound each shard, contact shards best-bound-first, merge
// per-shard top-k lists, and prune every shard whose bound cannot beat
// the running k-th result. Per-shard breakers and retries come from
// internal/resil; a shard that stays down degrades the answer instead
// of failing the query.
type Coordinator struct {
	plan       *Plan
	transports []Transport
	breakers   []*resil.Breaker
	retry      resil.RetryPolicy
	opts       CoordinatorOptions
	cache      *qcache.Cache

	mQueries   *obs.Counter
	mContacted *obs.Counter
	mPruned    *obs.Counter
	mDegraded  *obs.Counter
	mCacheHit  *obs.Counter
	mCacheMiss *obs.Counter
	mFanout    *obs.Histogram
	mShardReq  []*obs.Counter
	mShardErr  []*obs.Counter
}

// NewCoordinator wires a coordinator over one transport per shard.
func NewCoordinator(plan *Plan, transports []Transport, opts CoordinatorOptions) (*Coordinator, error) {
	if len(transports) != plan.Shards() {
		return nil, fmt.Errorf("shard: %d transports for %d shards", len(transports), plan.Shards())
	}
	if opts.DefaultEngine == "" {
		opts.DefaultEngine = "INE"
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerThreshold < 0 {
		opts.BreakerThreshold = 0 // disabled breaker admits everything
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.MaxFanout < 1 {
		opts.MaxFanout = 4
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	c := &Coordinator{plan: plan, transports: transports, opts: opts}
	if opts.Retry != nil {
		c.retry = *opts.Retry
	} else {
		c.retry = resil.RetryPolicy{Attempts: 2, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2}
	}
	for i := 0; i < plan.Shards(); i++ {
		c.breakers = append(c.breakers, resil.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown))
	}
	if opts.CacheEntries > 0 {
		c.cache = qcache.New(qcache.Config{MaxEntries: opts.CacheEntries})
	}
	c.register(opts.Registry)
	return c, nil
}

const (
	mShardQueries   = "fannr_shard_queries_total"
	mShardContacted = "fannr_shard_contacted_total"
	mShardPruned    = "fannr_shard_pruned_total"
	mShardDegraded  = "fannr_shard_degraded_total"
	mShardCacheHit  = "fannr_shard_cache_hits_total"
	mShardCacheMiss = "fannr_shard_cache_misses_total"
	mShardFanout    = "fannr_shard_fanout"
	mShardRequests  = "fannr_shard_requests_total"
	mShardErrors    = "fannr_shard_errors_total"
	mShardBreaker   = "fannr_shard_breaker_state"
	mShardEpoch     = "fannr_shard_plan_epoch"
	mShardCount     = "fannr_shard_count"
)

func (c *Coordinator) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mQueries = reg.Counter(mShardQueries, "Coordinated FANN queries.")
	c.mContacted = reg.Counter(mShardContacted, "Shard RPCs dispatched (pruned shards never appear here).")
	c.mPruned = reg.Counter(mShardPruned, "Shards skipped because their g_phi lower bound could not beat the running k-th result.")
	c.mDegraded = reg.Counter(mShardDegraded, "Queries answered without at least one unreachable shard's candidates.")
	c.mCacheHit = reg.Counter(mShardCacheHit, "Coordinator exact-cache hits.")
	c.mCacheMiss = reg.Counter(mShardCacheMiss, "Coordinator exact-cache misses.")
	buckets := make([]float64, 0, c.plan.Shards()+1)
	for i := 0; i <= c.plan.Shards(); i++ {
		buckets = append(buckets, float64(i))
	}
	c.mFanout = reg.Histogram(mShardFanout, "Shards contacted per query.", buckets)
	reg.GaugeFunc(mShardEpoch, "Partition plan epoch (topology fingerprint, low 52 bits).", func() float64 {
		return float64(c.plan.Epoch & ((1 << 52) - 1))
	})
	reg.GaugeFunc(mShardCount, "Shards in the plan.", func() float64 { return float64(c.plan.Shards()) })
	for i := 0; i < c.plan.Shards(); i++ {
		l := obs.L("shard", fmt.Sprintf("%d", i))
		c.mShardReq = append(c.mShardReq, reg.Counter(mShardRequests, "RPCs sent to this shard.", l))
		c.mShardErr = append(c.mShardErr, reg.Counter(mShardErrors, "Failed RPCs to this shard (after retries).", l))
		br := c.breakers[i]
		reg.GaugeFunc(mShardBreaker, "Per-shard breaker state (0 closed, 1 half-open, 2 open).", func() float64 {
			switch br.State() {
			case resil.Open:
				return 2
			case resil.HalfOpen:
				return 1
			default:
				return 0
			}
		}, l)
	}
}

// Plan returns the coordinator's partition plan.
func (c *Coordinator) Plan() *Plan { return c.plan }

// BreakerState exposes a shard's breaker state (for /readyz and tests).
func (c *Coordinator) BreakerState(s int) resil.State { return c.breakers[s].State() }

// TripShard force-opens a shard's breaker by feeding it failures — the
// chaos hook tests and operators use to take a shard out of rotation.
func (c *Coordinator) TripShard(s int) {
	for i := 0; i < c.opts.BreakerThreshold+1; i++ {
		c.breakers[s].Failure()
	}
}

// healthyMask fingerprints which shards are currently admitted by their
// breakers, for the cache key: a shard dropping out (or coming back)
// must not serve results cached under a different reachable set.
func (c *Coordinator) healthyMask() string {
	mask := make([]byte, (len(c.breakers)+7)/8)
	for i, b := range c.breakers {
		if b.State() != resil.Open {
			mask[i/8] |= 1 << (i % 8)
		}
	}
	return hex.EncodeToString(mask)
}

// shardCall records one shard's fate for EXPLAIN and /debug.
type shardCall struct {
	shard    int
	target   string
	bound    float64
	outcome  string // "ok" | "pruned" | "down" | "skipped"
	answers  int
	micros   int64
	code     string
	cacheHit bool
}

// Execute runs one coordinated query. tr may be nil; when set, one span
// per candidate-bearing shard lands under the current trace position.
func (c *Coordinator) Execute(ctx context.Context, req *Request, tr *obs.Trace) (*Result, error) {
	start := time.Now()
	if c.mQueries != nil {
		c.mQueries.Inc()
	}
	engine := req.Engine
	if engine == "" {
		engine = c.opts.DefaultEngine
	}
	q := core.Query{P: req.P, Q: req.Q, Phi: req.Phi}
	switch req.Agg {
	case "", "max":
		q.Agg = core.Max
	case "sum":
		q.Agg = core.Sum
	default:
		return nil, Classify(fmt.Errorf("%w: unknown aggregate %q", core.ErrInvalid, req.Agg), 0)
	}
	if !core.KnownAlgo(req.Algo) {
		return nil, Classify(fmt.Errorf("%w: unknown algorithm %q", core.ErrInvalid, req.Algo), 0)
	}
	if err := q.Validate(c.plan.g); err != nil {
		return nil, Classify(err, 0)
	}
	k := req.K
	if k < 1 {
		k = 1
	}

	// Topology-stamped exact cache: engine@shards:<epoch>:<healthy mask>.
	var rkey qcache.ResultKey
	algo := req.Algo
	if algo == "" {
		algo = "gd"
	}
	if c.cache != nil {
		rkey = qcache.ResultKey{
			Engine: fmt.Sprintf("%s@shards:%d:%s", engine, c.plan.Epoch, c.healthyMask()),
			Algo:   algo, Agg: q.Agg, Phi: q.Phi, K: k,
			P: qcache.FingerprintNodes(q.P), Q: qcache.FingerprintNodes(q.Q),
		}
		if answers, hit := c.cache.GetResult(rkey); hit {
			if c.mCacheHit != nil {
				c.mCacheHit.Inc()
			}
			res := &Result{Engine: engine, CacheHit: true, Micros: time.Since(start).Microseconds()}
			for _, a := range answers {
				res.Answers = append(res.Answers, Answer{P: a.P, Dist: a.Dist, Subset: a.Subset})
			}
			return res, nil
		}
		if c.mCacheMiss != nil {
			c.mCacheMiss.Inc()
		}
	}

	// Scatter: route P, bound candidate-bearing shards, order best-first.
	perShard := c.plan.SplitP(q.P)
	kAgg := q.K()
	type cand struct {
		shard int
		bound float64
	}
	var order []cand
	for s, ps := range perShard {
		if len(ps) == 0 {
			continue
		}
		order = append(order, cand{s, c.plan.Bound(s, q.Q, kAgg, q.Agg)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bound != order[j].bound {
			return order[i].bound < order[j].bound
		}
		return order[i].shard < order[j].shard
	})

	var (
		merged    []Answer
		calls     []shardCall
		down      []int
		downErrs  []*Error
		contacted int
		pruned    int
		succeeded int
	)
	kthDist := math.Inf(1)
	tighten := func() {
		sortAnswers(merged)
		if len(merged) > k {
			merged = merged[:k]
		}
		if len(merged) == k {
			kthDist = merged[k-1].Dist
		}
	}

	for i := 0; i < len(order); {
		// Bounds ascend, kthDist only shrinks: once one shard prunes,
		// every remaining shard prunes too.
		if order[i].bound >= kthDist {
			for ; i < len(order); i++ {
				pruned++
				calls = append(calls, shardCall{shard: order[i].shard, target: c.transports[order[i].shard].Target(), bound: order[i].bound, outcome: "pruned"})
			}
			break
		}
		wave := order[i:]
		if len(wave) > c.opts.MaxFanout {
			wave = wave[:c.opts.MaxFanout]
		}
		i += len(wave)

		results := make([]shardCall, len(wave))
		responses := make([]*Response, len(wave))
		errs := make([]*Error, len(wave))
		var wg sync.WaitGroup
		for wi, cd := range wave {
			wg.Add(1)
			go func(wi int, cd cand) {
				defer wg.Done()
				sc := shardCall{shard: cd.shard, target: c.transports[cd.shard].Target(), bound: cd.bound}
				resp, se := c.callShard(ctx, cd.shard, &Request{
					P: perShard[cd.shard], Q: q.Q, Phi: q.Phi, Agg: req.Agg,
					Algo: req.Algo, Engine: engine, K: k,
				})
				if se != nil {
					sc.outcome, sc.code = "down", se.Code
					errs[wi] = se
				} else {
					sc.outcome, sc.answers = "ok", len(resp.Answers)
					sc.micros, sc.cacheHit = resp.Micros, resp.CacheHit
					responses[wi] = resp
				}
				results[wi] = sc
			}(wi, cd)
		}
		wg.Wait()
		for wi, cd := range wave {
			calls = append(calls, results[wi])
			if errs[wi] != nil {
				down = append(down, cd.shard)
				downErrs = append(downErrs, errs[wi])
				contacted++
				continue
			}
			contacted++
			succeeded++
			merged = append(merged, responses[wi].Answers...)
		}
		tighten()
	}

	if c.mContacted != nil {
		c.mContacted.Add(int64(contacted))
		c.mPruned.Add(int64(pruned))
		c.mFanout.Observe(float64(contacted))
	}
	c.emitSpans(tr, calls)
	sort.Ints(down)

	if len(down) > 0 && succeeded == 0 && len(order) > 0 {
		// Nothing answered: relay the shard fault, preferring the
		// overload class (it carries Retry-After and means "try again").
		se := downErrs[0]
		for _, e := range downErrs {
			if e.Status == http.StatusServiceUnavailable {
				se = e
				break
			}
		}
		if c.mDegraded != nil {
			c.mDegraded.Inc()
		}
		return nil, se
	}
	res := &Result{
		Engine: engine, Answers: merged,
		Degraded: len(down) > 0, DownShards: down,
		Contacted: contacted, Pruned: pruned,
		Micros: time.Since(start).Microseconds(),
	}
	if res.Degraded && c.mDegraded != nil {
		c.mDegraded.Inc()
	}
	if len(merged) == 0 {
		return res, Classify(core.ErrNoResult, 0)
	}
	if c.cache != nil && !res.Degraded {
		answers := make([]core.Answer, len(merged))
		for i, a := range merged {
			answers[i] = core.Answer{P: a.P, Dist: a.Dist, Subset: a.Subset}
		}
		c.cache.PutResult(rkey, answers)
	}
	return res, nil
}

// callShard wraps one transport call in the breaker and retry policy.
// 4xx-class faults are permanent (retrying a malformed request cannot
// help); everything else retries with jittered backoff. The breaker's
// half-open probe contract is honored: an admitted probe always reports
// success or failure.
func (c *Coordinator) callShard(ctx context.Context, s int, req *Request) (*Response, *Error) {
	if c.mShardReq != nil {
		c.mShardReq[s].Inc()
	}
	br := c.breakers[s]
	admitted, _ := br.Admit()
	if !admitted {
		if c.mShardErr != nil {
			c.mShardErr[s].Inc()
		}
		return nil, &Error{
			Status: http.StatusServiceUnavailable, Code: "overloaded",
			RetryAfter: int(c.opts.BreakerCooldown.Round(time.Second) / time.Second),
			Msg:        fmt.Sprintf("shard %d: breaker open", s),
		}
	}
	var (
		resp      *Response
		permanent *Error
	)
	err := c.retry.Do(ctx, func() error {
		r, callErr := c.transports[s].Call(ctx, req)
		if callErr == nil {
			resp = r
			return nil
		}
		var se *Error
		if errors.As(callErr, &se) && !se.Retryable() {
			permanent = se
			return nil // stop retrying: client-fault answers don't change
		}
		return callErr
	})
	switch {
	case err == nil && permanent == nil:
		br.Success()
		return resp, nil
	case permanent != nil:
		// The shard answered decisively; that is breaker-health success.
		br.Success()
		if c.mShardErr != nil {
			c.mShardErr[s].Inc()
		}
		return nil, permanent
	default:
		br.Failure()
		if c.mShardErr != nil {
			c.mShardErr[s].Inc()
		}
		return nil, Classify(err, int(c.opts.RetryAfter.Round(time.Second)/time.Second))
	}
}

// emitSpans writes one span per considered shard. Traces are
// single-goroutine, so spans are recorded after the parallel waves with
// the measured per-shard time carried in the micros attribute.
func (c *Coordinator) emitSpans(tr *obs.Trace, calls []shardCall) {
	if tr == nil {
		return
	}
	for _, sc := range calls {
		sp := tr.StartSpan(fmt.Sprintf("shard[%d]", sc.shard))
		sp.SetAttr("target", sc.target)
		sp.SetAttr("outcome", sc.outcome)
		if !math.IsInf(sc.bound, 1) {
			sp.SetAttr("bound", sc.bound)
		}
		if sc.outcome == "ok" {
			sp.SetAttr("answers", sc.answers)
			sp.SetAttr("micros", sc.micros)
			if sc.cacheHit {
				sp.SetAttr("shard_cache_hit", true)
			}
		}
		if sc.code != "" {
			sp.SetAttr("code", sc.code)
		}
		sp.End()
	}
}
