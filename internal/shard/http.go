package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"fannr/internal/graph"
	"fannr/internal/obs"
	"fannr/internal/resil"
)

// FANNRequest mirrors the single-process server's /fann request body, so
// a client can point at a coordinator without changing a byte.
type FANNRequest struct {
	P      []graph.NodeID `json:"p"`
	Q      []graph.NodeID `json:"q"`
	Phi    float64        `json:"phi"`
	Agg    string         `json:"agg"`
	Algo   string         `json:"algo"`
	Engine string         `json:"engine"`
	K      int            `json:"k"`
}

// FANNResponse extends the server's response shape with the
// scatter-gather accounting: which shards were down (degraded partial
// answers are stamped, never silent), how many were contacted and how
// many the bound pruned.
type FANNResponse struct {
	Answers []Answer `json:"answers"`
	Micros  int64    `json:"micros"`
	Engine  string   `json:"engine"`

	Degraded        bool        `json:"degraded,omitempty"`
	DegradedShards  []int       `json:"degraded_shards,omitempty"`
	ShardsContacted int         `json:"shards_contacted"`
	ShardsPruned    int         `json:"shards_pruned"`
	CacheHit        bool        `json:"cache_hit,omitempty"`
	Explain         *obs.Report `json:"explain,omitempty"`
}

// ErrorResponse matches the server's error body.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Handler serves the coordinator's public surface:
//
//	POST /fann     — coordinated FANN query (?explain=1 adds spans)
//	GET  /healthz  — coordinator liveness
//	GET  /readyz   — per-shard breaker states; 503 once every shard is out
//	GET  /meta     — plan topology (S, epoch, per-shard sizes, targets)
//	GET  /metrics  — fannr_shard_* (when a Registry was provided)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fann", c.handleFANN)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /meta", c.handleMeta)
	if c.opts.Registry != nil {
		mux.Handle("GET /metrics", c.opts.Registry.Handler())
	}
	return recoverPanics(mux)
}

// recoverPanics turns a handler panic into a 500 — a shard bug must not
// take the coordinator down with it.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{
					Error: fmt.Sprintf("internal error: %v", rec), Code: "internal",
				})
				debug.PrintStack()
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// failHTTP writes a classified error, relaying the {error, code} body
// and the Retry-After hint end-to-end — a shard's 503 leaves the
// coordinator as a 503 with the same code, not a generic 500.
func failHTTP(w http.ResponseWriter, se *Error) {
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
	}
	writeJSON(w, se.Status, ErrorResponse{Error: se.Msg, Code: se.Code})
}

func (c *Coordinator) handleFANN(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req FANNRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFramePayload)).Decode(&req); err != nil {
		failHTTP(w, &Error{Status: http.StatusBadRequest, Code: "invalid", Msg: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	explain := r.URL.Query().Get("explain") == "1" || r.Header.Get("X-Fannr-Explain") != ""
	var tr *obs.Trace
	if explain {
		tr = obs.NewTrace(obs.NewRequestID())
	}
	res, err := c.Execute(r.Context(), &Request{
		P: req.P, Q: req.Q, Phi: req.Phi, Agg: req.Agg,
		Algo: req.Algo, Engine: req.Engine, K: req.K,
	}, tr)
	if err != nil {
		failHTTP(w, Classify(err, int(c.opts.RetryAfter.Round(time.Second)/time.Second)))
		return
	}
	resp := FANNResponse{
		Answers: res.Answers, Micros: time.Since(start).Microseconds(),
		Engine: res.Engine, Degraded: res.Degraded, DegradedShards: res.DownShards,
		ShardsContacted: res.Contacted, ShardsPruned: res.Pruned, CacheHit: res.CacheHit,
	}
	if resp.Answers == nil {
		resp.Answers = []Answer{}
	}
	if tr != nil {
		tr.Root().End()
		resp.Explain = tr.Report()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": c.plan.Shards()})
}

// shardStatus is one shard's /readyz row.
type shardStatus struct {
	Shard   int    `json:"shard"`
	Target  string `json:"target"`
	Breaker string `json:"breaker"`
	Objects int    `json:"vertices"`
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Status  string        `json:"status"`
		Epoch   uint64        `json:"epoch"`
		Healthy int           `json:"healthy"`
		Total   int           `json:"total"`
		Shards  []shardStatus `json:"shards"`
	}{Epoch: c.plan.Epoch, Total: c.plan.Shards()}
	for s := 0; s < c.plan.Shards(); s++ {
		st := c.breakers[s].State()
		if st != resil.Open {
			out.Healthy++
		}
		out.Shards = append(out.Shards, shardStatus{
			Shard: s, Target: c.transports[s].Target(),
			Breaker: st.String(), Objects: len(c.plan.Group(s)),
		})
	}
	status := http.StatusOK
	switch {
	case out.Healthy == out.Total:
		out.Status = "ready"
	case out.Healthy > 0:
		out.Status = "degraded"
	default:
		out.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

func (c *Coordinator) handleMeta(w http.ResponseWriter, _ *http.Request) {
	type shardMeta struct {
		Shard    int    `json:"shard"`
		Target   string `json:"target"`
		Vertices int    `json:"vertices"`
	}
	out := struct {
		Shards  int         `json:"shards"`
		Epoch   uint64      `json:"epoch"`
		Graph   string      `json:"graph"`
		Nodes   int         `json:"nodes"`
		Engine  string      `json:"default_engine"`
		Targets []shardMeta `json:"targets"`
	}{
		Shards: c.plan.Shards(), Epoch: c.plan.Epoch,
		Graph: c.plan.g.Name(), Nodes: c.plan.g.NumNodes(),
		Engine: c.opts.DefaultEngine,
	}
	for s := 0; s < c.plan.Shards(); s++ {
		out.Targets = append(out.Targets, shardMeta{
			Shard: s, Target: c.transports[s].Target(), Vertices: len(c.plan.Group(s)),
		})
	}
	writeJSON(w, http.StatusOK, out)
}
