package shard

import (
	"encoding/binary"
	"errors"
	"testing"

	"fannr/internal/graph"
)

func TestCodecRoundTrip(t *testing.T) {
	req := &Request{
		P: []graph.NodeID{3, 7, 11}, Q: []graph.NodeID{1, 2}, Phi: 0.5,
		Agg: "max", Algo: "gd", Engine: "INE", K: 2,
	}
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.P) != 3 || got.P[0] != 3 || got.Phi != 0.5 || got.Engine != "INE" || got.K != 2 {
		t.Fatalf("round trip mangled request: %+v", got)
	}
	resp := &Response{Answers: []Answer{{P: 7, Dist: 1.25}}, Engine: "INE", Micros: 42}
	rframe, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := DecodeResponse(rframe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rgot.Answers) != 1 || rgot.Answers[0].Dist != 1.25 || rgot.Micros != 42 {
		t.Fatalf("round trip mangled response: %+v", rgot)
	}
}

// Every forged-frame class must come back as ErrCodec, never a panic.
func TestCodecRejectsForgedFrames(t *testing.T) {
	good, err := EncodeRequest(&Request{P: []graph.NodeID{1}, Q: []graph.NodeID{2}, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0xFF),
		"bad magic": mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }),
		"version skew": mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:], CodecVersion+1)
			return b
		}),
		"reserved flags": mutate(func(b []byte) []byte { b[6] = 1; return b }),
		"forged length": mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:], 1<<30)
			return b
		}),
		"length mismatch": mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:], binary.BigEndian.Uint32(b[8:])+1)
			return b
		}),
		"bit rot": mutate(func(b []byte) []byte { b[frameHeader+2] ^= 0x40; return b }),
	}
	for name, data := range cases {
		if _, err := DecodeRequest(data); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", name, err)
		}
	}
}
