// Package shard is the distributed scatter-gather serving subsystem: a
// partition plan that cuts P-object ownership along the G-tree's
// balanced partition tree, shard hosts that each run a full engine set
// over the graph behind a versioned JSON-over-HTTP RPC, and a
// coordinator that fans a query only to shards whose g_φ lower bound
// beats the running k-th result, merging per-shard top-k lists into an
// exact global answer. See DESIGN.md §17 for the bound derivation and
// the failure semantics.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"fannr/internal/graph"
)

// Wire frame: magic | version u16 | flags u16 | length u32 | payload |
// crc32(payload). The frame exists so a shard host never trusts a raw
// byte stream: forged lengths, truncation, version skew and bit rot are
// all detected before the JSON decoder ever runs, and every decode
// failure is an error — never a panic (FuzzShardRPC enforces this).
const (
	frameMagic   = 0x46535250 // "FSRP"
	CodecVersion = 1
	frameHeader  = 4 + 2 + 2 + 4 // magic, version, flags, length
	frameTrailer = 4             // crc32
	// maxFramePayload bounds a frame's JSON payload, mirroring the HTTP
	// server's request-body cap.
	maxFramePayload = 16 << 20
)

// ErrCodec tags every frame-level decode failure (errors.Is-able).
var ErrCodec = errors.New("shard: codec")

// EncodeFrame wraps payload in a version-1 frame.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds cap %d", ErrCodec, len(payload), maxFramePayload)
	}
	out := make([]byte, frameHeader+len(payload)+frameTrailer)
	binary.BigEndian.PutUint32(out[0:], frameMagic)
	binary.BigEndian.PutUint16(out[4:], CodecVersion)
	binary.BigEndian.PutUint16(out[6:], 0)
	binary.BigEndian.PutUint32(out[8:], uint32(len(payload)))
	copy(out[frameHeader:], payload)
	binary.BigEndian.PutUint32(out[frameHeader+len(payload):], crc32.ChecksumIEEE(payload))
	return out, nil
}

// DecodeFrame validates a frame and returns its payload. The payload is
// a subslice of data, not a copy. Every malformation — truncation,
// forged length, version skew, reserved flags, checksum mismatch,
// trailing garbage — is an ErrCodec-wrapped error.
func DecodeFrame(data []byte) ([]byte, error) {
	if len(data) < frameHeader+frameTrailer {
		return nil, fmt.Errorf("%w: frame %d bytes, need at least %d", ErrCodec, len(data), frameHeader+frameTrailer)
	}
	if m := binary.BigEndian.Uint32(data[0:]); m != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, m)
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != CodecVersion {
		return nil, fmt.Errorf("%w: version skew: frame v%d, this binary speaks v%d", ErrCodec, v, CodecVersion)
	}
	if f := binary.BigEndian.Uint16(data[6:]); f != 0 {
		return nil, fmt.Errorf("%w: reserved flags %#x set", ErrCodec, f)
	}
	n := binary.BigEndian.Uint32(data[8:])
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: forged length %d exceeds cap %d", ErrCodec, n, maxFramePayload)
	}
	if uint64(len(data)) != uint64(frameHeader)+uint64(n)+uint64(frameTrailer) {
		return nil, fmt.Errorf("%w: frame %d bytes, header claims %d payload", ErrCodec, len(data), n)
	}
	payload := data[frameHeader : frameHeader+int(n)]
	want := binary.BigEndian.Uint32(data[frameHeader+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch: %#x vs %#x", ErrCodec, got, want)
	}
	return payload, nil
}

// Request is one shard RPC: the FANN query restricted to the P-objects
// the coordinator routed to this shard. Wire shape matches the public
// /fann request so the two layers stay mentally interchangeable.
type Request struct {
	P      []graph.NodeID `json:"p"`
	Q      []graph.NodeID `json:"q"`
	Phi    float64        `json:"phi"`
	Agg    string         `json:"agg"`
	Algo   string         `json:"algo"`
	Engine string         `json:"engine"`
	K      int            `json:"k"`
}

// Answer mirrors the public FANN answer shape.
type Answer struct {
	P      graph.NodeID   `json:"p"`
	Dist   float64        `json:"dist"`
	Subset []graph.NodeID `json:"subset,omitempty"`
}

// Response is a shard's reply. A shard that owns no candidate close
// enough simply returns an empty Answers list — per-shard "no result" is
// a successful empty reply, not an error; only the coordinator can
// decide the global query found nothing.
type Response struct {
	Answers []Answer `json:"answers"`
	Engine  string   `json:"engine"`
	Micros  int64    `json:"micros"`
	// Stats the coordinator folds into EXPLAIN spans.
	GPhiEvals int64 `json:"gphi_evals,omitempty"`
	CacheHit  bool  `json:"cache_hit,omitempty"`
}

// EncodeRequest / DecodeRequest / EncodeResponse / DecodeResponse frame
// the JSON bodies. Both directions run through the same frame codec, so
// the in-process transport exercises byte-for-byte what HTTP ships.

func EncodeRequest(r *Request) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(payload)
}

func DecodeRequest(data []byte) (*Request, error) {
	payload, err := DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	var r Request
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("%w: request body: %s", ErrCodec, err)
	}
	return &r, nil
}

func EncodeResponse(r *Response) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(payload)
}

func DecodeResponse(data []byte) (*Response, error) {
	payload, err := DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	var r Response
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("%w: response body: %s", ErrCodec, err)
	}
	return &r, nil
}
