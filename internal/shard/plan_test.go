package shard

import (
	"math"
	"math/rand"
	"testing"

	"fannr/internal/core"
	"fannr/internal/graph"
	"fannr/internal/gtree"
)

func testGraph(t *testing.T, nodes int, seed int64) (*graph.Graph, *gtree.Tree) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{Nodes: nodes, Seed: seed, Name: "shard-test"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gtree.Build(g, gtree.Options{MaxLeafSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

// Every vertex must belong to exactly the shard SplitP routes it to.
func TestPlanOwnership(t *testing.T) {
	g, tr := testGraph(t, 260, 21)
	plan, err := NewPlan(g, tr, PlanOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 4 {
		t.Fatalf("Shards() = %d", plan.Shards())
	}
	owned := 0
	for s := 0; s < plan.Shards(); s++ {
		for _, v := range plan.Group(s) {
			if plan.ShardOf(v) != s {
				t.Fatalf("vertex %d: ShardOf %d, group %d", v, plan.ShardOf(v), s)
			}
			owned++
		}
	}
	if owned != g.NumNodes() {
		t.Fatalf("groups own %d of %d vertices", owned, g.NumNodes())
	}
	P := []graph.NodeID{0, 5, 99, 201, 13}
	per := plan.SplitP(P)
	total := 0
	for s, ps := range per {
		total += len(ps)
		for _, v := range ps {
			if plan.ShardOf(v) != s {
				t.Fatalf("SplitP routed %d to shard %d, owner %d", v, s, plan.ShardOf(v))
			}
		}
	}
	if total != len(P) {
		t.Fatalf("SplitP dropped objects: %d of %d", total, len(P))
	}
}

// The plan epoch must be deterministic for one topology and differ
// between topologies — it is what invalidates coordinator caches.
func TestPlanEpoch(t *testing.T) {
	g, tr := testGraph(t, 260, 21)
	p2a, err := NewPlan(g, tr, PlanOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2b, err := NewPlan(g, tr, PlanOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := NewPlan(g, tr, PlanOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p2a.Epoch != p2b.Epoch {
		t.Fatalf("same topology, different epochs: %d vs %d", p2a.Epoch, p2b.Epoch)
	}
	if p2a.Epoch == p4.Epoch {
		t.Fatalf("S=2 and S=4 share epoch %d", p2a.Epoch)
	}
}

// The shard-level bound must never exceed the true g_φ of any candidate
// the shard owns — this is the exactness of scatter-gather pruning. The
// check runs g_φ per candidate through brute force and compares.
func TestBoundIsLowerBound(t *testing.T) {
	g, tr := testGraph(t, 220, 33)
	plan, err := NewPlan(g, tr, PlanOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(8)
		Q := make([]graph.NodeID, m)
		for i := range Q {
			Q[i] = graph.NodeID(rng.Intn(g.NumNodes()))
		}
		phi := []float64{0.1, 0.5, 1.0}[rng.Intn(3)]
		agg := core.Aggregate(rng.Intn(2))
		q := core.Query{Q: Q, Phi: phi, Agg: agg}
		q.P = []graph.NodeID{0} // placeholder for K()
		k := q.K()
		for s := 0; s < plan.Shards(); s++ {
			bound := plan.Bound(s, Q, k, agg)
			for _, p := range plan.Group(s) {
				single := core.Query{P: []graph.NodeID{p}, Q: Q, Phi: phi, Agg: agg}
				ans, err := core.Brute(g, single)
				if err != nil {
					continue // unreachable candidate: true g_φ is +Inf ≥ bound
				}
				if bound > ans.Dist+1e-9*(1+ans.Dist) {
					t.Fatalf("trial %d shard %d: bound %v > g_φ(%d) = %v (φ=%v agg=%v |Q|=%d)",
						trial, s, bound, p, ans.Dist, phi, agg, m)
				}
			}
		}
	}
}

// Empty shards bound to +Inf so the coordinator never contacts them.
func TestBoundEmptyShard(t *testing.T) {
	g, err := graph.Generate(graph.GenConfig{Nodes: 40, Seed: 3, Name: "shard-tiny"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gtree.Build(g, gtree.Options{MaxLeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(g, tr, PlanOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	empty := -1
	for s := 0; s < plan.Shards(); s++ {
		if len(plan.Group(s)) == 0 {
			empty = s
			break
		}
	}
	if empty == -1 {
		t.Skip("no empty shard produced")
	}
	if b := plan.Bound(empty, []graph.NodeID{1, 2}, 1, core.Max); !math.IsInf(b, 1) {
		t.Fatalf("empty shard bound = %v, want +Inf", b)
	}
}
