package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := Resolve(w); got != w {
			t.Fatalf("Resolve(%d) = %d", w, got)
		}
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 17, 256} {
			hits := make([]atomic.Int32, n)
			Do(workers, n, func(_, i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestDoWorkerIDsAreDense(t *testing.T) {
	const workers, n = 4, 1000
	seen := make([]atomic.Int32, workers)
	Do(workers, n, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d outside [0,%d)", w, workers)
			return
		}
		seen[w].Add(1)
	})
	total := int32(0)
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("workers processed %d items, want %d", total, n)
	}
}

// Per-worker scratch must never be observed by two concurrent calls: the
// contract is that calls with the same worker id are sequential.
func TestDoPerWorkerScratchIsExclusive(t *testing.T) {
	const workers, n = 8, 4096
	busy := make([]atomic.Bool, workers)
	Do(workers, n, func(w, _ int) {
		if !busy[w].CompareAndSwap(false, true) {
			t.Errorf("worker %d entered concurrently", w)
			return
		}
		busy[w].Store(false)
	})
}

func TestDoInlineWhenSingleWorker(t *testing.T) {
	// A single worker must run on the calling goroutine in index order.
	var order []int
	Do(1, 5, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d with one worker", w)
		}
		order = append(order, i) // safe: inline contract means no races
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v not sequential", order)
		}
	}
}
