// Package par provides the worker-pool primitive behind the repository's
// parallel index-construction passes (G-tree matrix builds, CH witness
// searches) and any other embarrassingly parallel loop.
//
// Every parallel entry point in the repo exposes a `Workers int` option
// with the same convention: 0 means one worker per GOMAXPROCS, 1 forces
// the sequential path (kept for ablation and determinism baselines), and
// any other positive value is taken literally. Resolve implements the
// convention in one place.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers option value to a concrete worker count:
// 0 (or negative) resolves to runtime.GOMAXPROCS(0), anything else is
// returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Do calls fn(worker, i) exactly once for every i in [0, n), fanning the
// calls out across min(workers, n) goroutines, and returns once all calls
// have completed. Worker ids are dense in [0, workers): calls sharing a
// worker id never run concurrently, so per-worker scratch (heaps, distance
// arrays) needs no locking. Items are handed out dynamically through an
// atomic counter, which load-balances uneven item costs.
//
// With one worker (or n <= 1) the loop runs inline on the caller's
// goroutine — bit-for-bit the sequential code path, with no goroutines
// spawned.
func Do(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Resolve(workers)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
