package fannr

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI), wrapping the drivers in internal/exp at a reduced scale so the
// whole suite stays laptop-sized, plus per-algorithm and per-engine
// micro-benchmarks at the paper's default parameters (d=0.001, A=10%,
// M=128, C=1, φ=0.5).
//
// For full-size runs use the fannr-bench CLI, which exposes scale, query
// count and timeout flags.

import (
	"sync"
	"testing"
	"time"

	"fannr/internal/core"
	"fannr/internal/exp"
	"fannr/internal/workload"
)

func benchConfig() exp.Config {
	return exp.Config{
		Dataset: "NW",
		Scale:   1.0 / 64, // ~17k nodes
		Queries: 2,
		Seed:    1,
		Timeout: 3 * time.Second,
	}
}

var (
	benchEnvOnce sync.Once
	benchEnv     *exp.Env
	benchEnvErr  error
)

func sharedEnv(b *testing.B) *exp.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = exp.NewEnv(benchConfig())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func runFigure(b *testing.B, run func(e *exp.Env) ([]*exp.Table, error)) {
	e := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := run(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// Figure and table benchmarks — one per experiment in the paper.

func BenchmarkFig3a(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig3a() })
}
func BenchmarkFig3b(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig3b() })
}
func BenchmarkFig4a(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig4a() })
}
func BenchmarkFig4b(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig4b() })
}
func BenchmarkFig5(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig5() })
}
func BenchmarkFig6(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig6() })
}
func BenchmarkFig7(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig7() })
}
func BenchmarkFig8(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig8() })
}

func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 1.0 / 64 // Fig9 loads all seven datasets at Scale/8
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig10() })
}
func BenchmarkFig11(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig11() })
}
func BenchmarkFig12(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Fig12() })
}
func BenchmarkTableV(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.TableV() })
}
func BenchmarkAppendixA(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.AppendixA() })
}
func BenchmarkAppendixB(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.AppendixB() })
}
func BenchmarkAppendixC(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.AppendixC() })
}

// Beyond-paper experiments.

func BenchmarkAblationBound(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.AblationBound() })
}

func BenchmarkAblationRefine(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationRefine(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionEngines(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionEngines(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagnostics(b *testing.B) {
	runFigure(b, func(e *exp.Env) ([]*exp.Table, error) { return e.Diagnostics() })
}

// Per-algorithm micro-benchmarks at the paper's default parameters.

type benchQuery struct {
	q   core.Query
	rtP *RTree
}

var (
	benchQOnce sync.Once
	benchQ     benchQuery
)

func defaultQuery(b *testing.B) benchQuery {
	b.Helper()
	e := sharedEnv(b)
	benchQOnce.Do(func() {
		p := workload.DefaultParams()
		gen := NewWorkloadGenerator(e.G, 99)
		P := gen.UniformP(p.D)
		Q := gen.UniformQ(p.A, p.M)
		benchQ = benchQuery{
			q:   core.Query{P: P, Q: Q, Phi: p.Phi, Agg: core.Max},
			rtP: core.BuildPTree(e.G, P),
		}
	})
	return benchQ
}

func benchAlgo(b *testing.B, engine string, run func(e *exp.Env, gp core.GPhi, bq benchQuery) error) {
	e := sharedEnv(b)
	gp, err := e.Engine(engine)
	if err != nil {
		b.Fatal(err)
	}
	bq := defaultQuery(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(e, gp, bq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoGD_PHL(b *testing.B) {
	benchAlgo(b, "PHL", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.GD(e.G, gp, bq.q)
		return err
	})
}

func BenchmarkAlgoRList_PHL(b *testing.B) {
	benchAlgo(b, "PHL", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.RList(e.G, gp, bq.q)
		return err
	})
}

func BenchmarkAlgoIERKNN_PHL(b *testing.B) {
	benchAlgo(b, "PHL", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.IERKNN(e.G, bq.rtP, gp, bq.q, core.IEROptions{})
		return err
	})
}

func BenchmarkAlgoIERKNNCheapBound_PHL(b *testing.B) {
	benchAlgo(b, "PHL", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.IERKNN(e.G, bq.rtP, gp, bq.q, core.IEROptions{CheapBound: true})
		return err
	})
}

func BenchmarkAlgoExactMax_INE(b *testing.B) {
	benchAlgo(b, "INE", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.ExactMax(e.G, gp, bq.q)
		return err
	})
}

func BenchmarkAlgoAPXSum_INE(b *testing.B) {
	benchAlgo(b, "INE", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		q := bq.q
		q.Agg = core.Sum
		_, err := core.APXSum(e.G, gp, q)
		return err
	})
}

func BenchmarkAlgoKExactMax10_INE(b *testing.B) {
	benchAlgo(b, "INE", func(e *exp.Env, gp core.GPhi, bq benchQuery) error {
		_, err := core.KExactMax(e.G, gp, bq.q, 10)
		return err
	})
}

// Per-engine g_φ micro-benchmarks: one flexible aggregate evaluation.

func benchGPhi(b *testing.B, engine string) {
	e := sharedEnv(b)
	gp, err := e.Engine(engine)
	if err != nil {
		b.Fatal(err)
	}
	bq := defaultQuery(b)
	gp.Reset(bq.q.Q)
	k := bq.q.K()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := bq.q.P[i%len(bq.q.P)]
		gp.Dist(p, k, core.Max)
	}
}

func BenchmarkGPhiINE(b *testing.B)      { benchGPhi(b, "INE") }
func BenchmarkGPhiAStar(b *testing.B)    { benchGPhi(b, "A*") }
func BenchmarkGPhiPHL(b *testing.B)      { benchGPhi(b, "PHL") }
func BenchmarkGPhiGTree(b *testing.B)    { benchGPhi(b, "GTree") }
func BenchmarkGPhiIERAStar(b *testing.B) { benchGPhi(b, "IER-A*") }
func BenchmarkGPhiIERPHL(b *testing.B)   { benchGPhi(b, "IER-PHL") }
func BenchmarkGPhiIERGTree(b *testing.B) { benchGPhi(b, "IER-GTree") }
