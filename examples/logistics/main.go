// Logistics: the paper's motivating scenario. An online war-strategy game
// has military camps (Q) scattered over the map and a set of candidate
// locations (P) for a logistics center. With abundant supplies the best
// center minimizes the aggregate distance to *all* camps (an ANN query,
// φ = 1); with supplies for only half the camps, the flexible query
// (φ = 0.5) finds a different — much better placed — center.
//
// The example shows how the answer and its aggregate cost change as the
// supply fraction φ varies, for both max (worst-served camp) and sum
// (total transport cost) objectives.
package main

import (
	"fmt"
	"log"

	"fannr"
)

func main() {
	// The game map: roads are index-free here — the map changes every
	// match, so we use algorithms that need no precomputed index, exactly
	// the scenario the paper designed Exact-max and APX-sum for.
	g, err := fannr.Generate(fannr.GenConfig{Nodes: 20_000, Seed: 3, Name: "warmap"})
	if err != nil {
		log.Fatal(err)
	}
	gen := fannr.NewWorkloadGenerator(g, 11)
	candidates := gen.UniformP(0.005)    // ~100 candidate build sites
	camps := gen.ClusteredQ(0.40, 48, 3) // 48 camps in 3 theaters

	fmt.Printf("map: %d junctions; %d candidate sites; %d camps in 3 theaters\n\n",
		g.NumNodes(), len(candidates), len(camps))

	fmt.Println("supply-fraction sweep (max = farthest supplied camp):")
	fmt.Printf("%6s %10s %14s\n", "phi", "center", "worst camp dist")
	ine := fannr.NewINE(g)
	for _, phi := range []float64{0.25, 0.5, 0.75, 1.0} {
		q := fannr.Query{P: candidates, Q: camps, Phi: phi, Agg: fannr.Max}
		ans, err := fannr.ExactMax(g, ine, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f %10d %14.1f\n", phi, ans.P, ans.Dist)
	}

	fmt.Println("\nsupply-fraction sweep (sum = total transport cost),")
	fmt.Println("APX-sum (fast, index-free) vs exact GD:")
	fmt.Printf("%6s %12s %12s %8s\n", "phi", "APX-sum", "exact", "ratio")
	for _, phi := range []float64{0.25, 0.5, 0.75, 1.0} {
		q := fannr.Query{P: candidates, Q: camps, Phi: phi, Agg: fannr.Sum}
		apx, err := fannr.APXSum(g, ine, q)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := fannr.GD(g, ine, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f %12.1f %12.1f %8.4f\n",
			phi, apx.Dist, exact.Dist, apx.Dist/exact.Dist)
	}
	fmt.Println("\n(the paper proves the ratio is at most 3; in practice it stays near 1)")
}
