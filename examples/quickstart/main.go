// Quickstart: generate a road network, pose one FANN_R query, and answer
// it three ways — exact index-free (Exact-max), exact with an R-tree +
// hub labels (IER-kNN), and by brute force to confirm they agree.
package main

import (
	"fmt"
	"log"

	"fannr"
)

func main() {
	// A ~10k-node synthetic road network (jittered grid + highways).
	g, err := fannr.Generate(fannr.GenConfig{Nodes: 10_000, Seed: 42, Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Workload: 100 candidate sites (P), 64 demand points (Q) drawn from a
	// region covering 10%% of the network.
	gen := fannr.NewWorkloadGenerator(g, 7)
	q := fannr.Query{
		P:   gen.UniformP(0.01),
		Q:   gen.UniformQ(0.10, 64),
		Phi: 0.5, // serve the nearest half of the demand points
		Agg: fannr.Max,
	}
	fmt.Printf("query: |P|=%d |Q|=%d phi=%.1f k=%d agg=%s\n\n",
		len(q.P), len(q.Q), q.Phi, q.K(), q.Agg)

	// 1. Exact-max: exact, needs no road-network index at all.
	ans, err := fannr.ExactMax(g, fannr.NewINE(g), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact-max:  p*=%d  d*=%.1f\n", ans.P, ans.Dist)

	// 2. IER-kNN framework: R-tree over P + hub-label distance oracle.
	labels, err := fannr.BuildPHL(g, fannr.PHLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rtP := fannr.BuildPTree(g, q.P)
	ans2, err := fannr.IERKNN(g, rtP, fannr.NewOracleGPhi("PHL", labels), q, fannr.IEROptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IER-kNN:    p*=%d  d*=%.1f\n", ans2.P, ans2.Dist)

	// 3. Brute force agrees.
	ref, err := fannr.Brute(g, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Brute:      p*=%d  d*=%.1f\n", ref.P, ref.Dist)

	if ans.Dist != ref.Dist || ans2.Dist != ref.Dist {
		log.Fatal("answers disagree — this should be impossible")
	}
	fmt.Printf("\noptimal flexible subset (the %d demand points served): %v\n",
		len(ref.Subset), ref.Subset)
}
