// Rendezvous: the optimal meeting point (OMP) query as a special case of
// FANN_R (§I of the paper: "we can also regard the OMP query as a special
// case of the FANN_R query"). A group of friends scattered across town
// picks a street corner to meet at — any network node, no candidate list —
// minimizing either the latest arrival (max) or the total travel (sum).
// The flexible variant plans for the realistic case where only some
// fraction shows up.
package main

import (
	"fmt"
	"log"

	"fannr"
)

func main() {
	g, err := fannr.LoadDataset("DE", 1.0/16)
	if err != nil {
		log.Fatal(err)
	}
	gen := fannr.NewWorkloadGenerator(g, 17)
	friends := gen.ClusteredQ(0.6, 12, 3) // 12 friends in 3 neighborhoods
	fmt.Printf("town: %d corners; %d friends in 3 neighborhoods\n\n",
		g.NumNodes(), len(friends))

	gp := fannr.NewINE(g)

	meetMax, err := fannr.OMP(g, gp, friends, fannr.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimize the latest arrival (max): meet at node %d, last friend travels %.0f\n",
		meetMax.P, meetMax.Dist)

	meetSum, err := fannr.OMP(g, gp, friends, fannr.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimize total travel (sum):       meet at node %d, combined travel %.0f\n\n",
		meetSum.P, meetSum.Dist)

	fmt.Println("if only a fraction phi of the group shows up (flexible OMP, max):")
	fmt.Printf("%6s %10s %14s %s\n", "phi", "corner", "latest arrival", "who is served")
	for _, phi := range []float64{0.25, 0.5, 0.75, 1.0} {
		ans, err := fannr.FlexibleOMP(g, gp, friends, phi, fannr.Max)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f %10d %14.0f %v\n", phi, ans.P, ans.Dist, ans.Subset)
	}
	fmt.Println("\nsmall phi snaps the rendezvous into one neighborhood; phi = 1 is the classic OMP.")
}
