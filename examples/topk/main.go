// Topk: answering k-FANN_R queries (§V of the paper) — return the k best
// candidate sites at once, e.g. to present alternatives to a user. The
// example runs the four adapted algorithms side by side, times them, and
// checks they return identical distance profiles.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"fannr"
)

func main() {
	g, err := fannr.LoadDataset("NW", 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	gen := fannr.NewWorkloadGenerator(g, 5)
	q := fannr.Query{
		P:   gen.UniformP(0.002),
		Q:   gen.UniformQ(0.10, 128),
		Phi: 0.5,
		Agg: fannr.Max,
	}
	const k = 5
	fmt.Printf("network %s: %d nodes; |P|=%d |Q|=%d phi=%.1f; top-%d\n\n",
		g.Name(), g.NumNodes(), len(q.P), len(q.Q), q.Phi, k)

	labels, err := fannr.BuildPHL(g, fannr.PHLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	phlGD := fannr.NewOracleGPhi("PHL", labels)
	phlRL := fannr.NewOracleGPhi("PHL", labels)
	phlIER := fannr.NewOracleGPhi("PHL", labels)
	ine := fannr.NewINE(g)
	rtP := fannr.BuildPTree(g, q.P)

	type method struct {
		name string
		run  func() ([]fannr.Answer, error)
	}
	methods := []method{
		{"KGD (PHL)", func() ([]fannr.Answer, error) { return fannr.KGD(g, phlGD, q, k) }},
		{"KRList (PHL)", func() ([]fannr.Answer, error) { return fannr.KRList(g, phlRL, q, k) }},
		{"KIERKNN (PHL)", func() ([]fannr.Answer, error) {
			return fannr.KIERKNN(g, rtP, phlIER, q, k, fannr.IEROptions{})
		}},
		{"KExactMax (INE)", func() ([]fannr.Answer, error) { return fannr.KExactMax(g, ine, q, k) }},
	}

	var reference []fannr.Answer
	for _, m := range methods {
		start := time.Now()
		answers, err := m.run()
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		fmt.Printf("%-16s %10s  ", m.name, elapsed.Round(time.Microsecond))
		for _, a := range answers {
			fmt.Printf(" (p=%d d=%.0f)", a.P, a.Dist)
		}
		fmt.Println()
		if reference == nil {
			reference = answers
			continue
		}
		for i := range answers {
			if math.Abs(answers[i].Dist-reference[i].Dist) > 1e-6 {
				log.Fatalf("%s disagrees at rank %d", m.name, i+1)
			}
		}
	}
	fmt.Println("\nall four adaptations agree on the top-k distance profile.")
}
