// Meeting: the paper's real-world scenario — choosing a venue for an
// election meeting that is legitimate as long as at least half of the
// members attend. Venues are the real-world POI layers of the paper's
// Table IV: hotels host the meeting (P), members travel from their
// registered addresses (Q). Minimizing the *sum* distance over the best
// quorum cuts total travel cost; the example also contrasts it with the
// φ = 1 (everyone attends) answer.
package main

import (
	"fmt"
	"log"

	"fannr"
)

func main() {
	g, err := fannr.LoadDataset("NW", 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	gen := fannr.NewWorkloadGenerator(g, 2026)

	// Venues: the hotel POI layer (Table IV: HOT).
	hotels, err := fannr.FindPOILayer("HOT")
	if err != nil {
		log.Fatal(err)
	}
	venues := gen.POI(hotels)
	// Members: clustered around a few neighborhoods.
	members := gen.ClusteredQ(0.30, 96, 4)
	fmt.Printf("network %s: %d nodes; %d candidate hotels; %d members\n\n",
		g.Name(), g.NumNodes(), len(venues), len(members))

	// Index the network once (venues rarely change); PHL-style hub labels
	// answer each member-to-venue distance in microseconds.
	labels, err := fannr.BuildPHL(g, fannr.PHLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	gp := fannr.NewOracleGPhi("PHL", labels)
	rtP := fannr.BuildPTree(g, venues)

	for _, scenario := range []struct {
		phi  float64
		name string
	}{
		{0.5, "quorum (half the members)"},
		{1.0, "full attendance"},
	} {
		q := fannr.Query{P: venues, Q: members, Phi: scenario.phi, Agg: fannr.Sum}
		ans, err := fannr.IERKNN(g, rtP, gp, q, fannr.IEROptions{})
		if err != nil {
			log.Fatal(err)
		}
		x, y := g.Coord(ans.P)
		fmt.Printf("%s:\n", scenario.name)
		fmt.Printf("  venue node %d at (%.0f, %.0f)\n", ans.P, x, y)
		fmt.Printf("  total travel %.1f over %d attendees (avg %.1f each)\n\n",
			ans.Dist, len(ans.Subset), ans.Dist/float64(len(ans.Subset)))
	}
	fmt.Println("the quorum meeting's venue sits inside the densest member cluster;")
	fmt.Println("full attendance drags it toward the geometric middle of all clusters.")
}
