// Service: FANN_R as a location-based service — the deployment shape the
// paper's introduction motivates. The example starts the HTTP query
// server in-process, then acts as a client: it asks where to place a
// delivery hub that can serve 60% of today's orders with the smallest
// worst-case drive.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"fannr"
)

func main() {
	g, err := fannr.LoadDataset("COL", 1.0/64)
	if err != nil {
		log.Fatal(err)
	}
	labels, err := fannr.BuildPHL(g, fannr.PHLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := fannr.NewQueryServer(g, fannr.ServerOptions{PHL: labels})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("query server for %s (%d nodes) listening at %s\n\n", g.Name(), g.NumNodes(), base)

	// The "application": depots are candidate hub sites, orders arrive in
	// clusters (neighborhoods).
	gen := fannr.NewWorkloadGenerator(g, 33)
	depots := gen.UniformP(0.004)
	orders := gen.ClusteredQ(0.5, 60, 4)

	reqBody, _ := json.Marshal(fannr.FANNRequest{
		P: depots, Q: orders, Phi: 0.6, Agg: "max", Algo: "ier", Engine: "IER-PHL", K: 3,
	})
	start := time.Now()
	resp, err := http.Post(base+"/fann", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out fannr.FANNResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /fann (%d depots, %d orders, phi=0.6, top-3) -> HTTP %d in %s\n",
		len(depots), len(orders), resp.StatusCode, time.Since(start).Round(time.Millisecond))
	fmt.Printf("server-side query time: %dus\n\n", out.Micros)
	for i, a := range out.Answers {
		fmt.Printf("option %d: hub at node %d, worst covered order %.0f away, covers %d orders\n",
			i+1, a.P, a.Dist, len(a.Subset))
	}
}
