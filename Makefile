# Verification tiers. `make verify` is the full pre-merge recipe; the
# individual tiers exist so CI (or an impatient human) can run them
# separately. See README "Testing" for what each tier certifies.

GO ?= go

.PHONY: verify build test vet race race-full bench-server bench-build

## Tier 1 — compile + unit/integration tests (the seed contract).
build:
	$(GO) build ./...

test:
	$(GO) test ./...

## Tier 2 — static analysis.
vet:
	$(GO) vet ./...

## Tier 3 — race detector over the concurrency-bearing packages
## (engine pools, HTTP server, parallel index builds). Heavy cases are
## trimmed via -short; drop it for the full hammer.
race:
	$(GO) test -race -short ./internal/server/... ./internal/core/... \
		./internal/gtree/... ./internal/ch/... ./internal/par/...

## Race detector over everything, full-size tests (slow).
race-full:
	$(GO) test -race ./...

verify: build test vet race

## Throughput of the pooled lock-free request path vs the serialized
## baseline, across core counts.
bench-server:
	$(GO) test -run - -bench 'ServerThroughput|DistEndpoint' -cpu 1,2,4,8 \
		-benchtime 1x ./internal/server/

## Parallel index-construction speedup.
bench-build:
	$(GO) test -run - -bench BuildWorkers -benchtime 1x ./internal/gtree/ ./internal/ch/
