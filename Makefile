# Verification tiers. `make verify` is the full pre-merge recipe; the
# individual tiers exist so CI (or an impatient human) can run them
# separately. See README "Testing" for what each tier certifies.

GO ?= go

.PHONY: verify build test vet race race-full fuzz-smoke chaos chaos-load explain-smoke shard-smoke bench-server bench-build bench-json bench-cache bench-overhead bench-hotpath bench-guard bench-load bench-trend bench-shards

## Tier 1 — compile + unit/integration tests (the seed contract).
build:
	$(GO) build ./...

test:
	$(GO) test ./...

## Tier 2 — static analysis.
vet:
	$(GO) vet ./...

## Tier 3 — race detector over the concurrency-bearing packages
## (engine pools, HTTP server, parallel index builds, workload draws) plus
## the cross-engine differential harness. Heavy cases are trimmed via
## -short; drop it for the full hammer.
race: explain-smoke shard-smoke
	$(GO) test -race -short ./internal/server/... ./internal/core/... \
		./internal/resil/... ./internal/gtree/... ./internal/ch/... \
		./internal/par/... ./internal/workload/... ./internal/difftest/... \
		./internal/obs/... ./internal/qcache/... ./internal/lifecycle/... \
		./internal/phl/... ./internal/sp/... ./internal/rtree/... \
		./internal/shard/...

## Explain/observability smoke under the race detector: the nine-engine
## span-vs-counter invariant, slow-query capture with exemplar linkage,
## the slow-log hammer, and the trace-disabled zero-alloc guard.
explain-smoke:
	$(GO) test -race -run 'TestExplain|TestSlowLog|TestExemplar|TestObserveEx|TestTrace' \
		./internal/server/ ./internal/obs/ ./internal/core/

## Sharded-serving smoke under the race detector: exactness vs brute at
## S ∈ {1,2,4}, bound pruning, degraded partial results with one shard
## down, breaker + /readyz, the error-taxonomy table over the
## coordinator, and topology-epoch cache invalidation.
shard-smoke:
	$(GO) test -race -run 'TestCoordinator|TestHTTPTransport|TestPlan|TestCodec|TestPartitionK' \
		./internal/shard/ ./internal/gtree/
	$(GO) test -race -short -run TestDifferentialSharded ./internal/difftest/

## Race detector over everything, full-size tests (slow).
race-full:
	$(GO) test -race ./...

## Short burst of native fuzzing over the HTTP JSON surface and the
## differential case generator (go test -fuzz takes one target at a time,
## hence the loop). Seeds-only regression replay already runs in `test`.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run - -fuzz FuzzFANNEndpoint -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run - -fuzz FuzzDistEndpoint -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run - -fuzz FuzzDifferentialCase -fuzztime $(FUZZTIME) ./internal/difftest/
	$(GO) test -run - -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/phl/
	$(GO) test -run - -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/gtree/
	$(GO) test -run - -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/ch/
	$(GO) test -run - -fuzz FuzzShardRPC -fuzztime $(FUZZTIME) ./internal/shard/

## Fault-injection and overload acceptance: the circuit breaker + chaos
## engine contracts, then the server driven through saturation, breaker
## trips, fallback, and recovery — all under the race detector.
chaos:
	$(GO) test -race -v ./internal/resil/
	$(GO) test -race -v -run 'Overload|Drain|Chaos|Ladder|Saturat|Bounded|Probe|Admission|FactoryPanic|Metrics' \
		./internal/server/ ./internal/core/

## Index-lifecycle chaos: holder swap/quarantine semantics, SIGBUS
## containment on real truncated mappings, load-path corrupters, and the
## end-to-end acceptance pair — truncate-under-map quarantine/recovery
## and the 25-swap reload storm under query load — with the race
## detector on.
chaos-load:
	$(GO) test -race -v ./internal/lifecycle/
	$(GO) test -race -v -run 'Retry|FileChaos|TransientErrors|ChaosLatencyCancel' ./internal/resil/
	$(GO) test -race -v -run 'IndexFault|ReloadFailure|SwapStorm|Reload' ./internal/server/

verify: build test vet race

## Throughput of the pooled lock-free request path vs the serialized
## baseline, across core counts.
bench-server:
	$(GO) test -run - -bench 'ServerThroughput|DistEndpoint' -cpu 1,2,4,8 \
		-benchtime 1x ./internal/server/

## Parallel index-construction speedup.
bench-build:
	$(GO) test -run - -bench BuildWorkers -benchtime 1x ./internal/gtree/ ./internal/ch/

## Machine-readable benchmark trajectory (latency quantiles + op counts
## for the headline algorithms); BENCH_PR4.json is the checked-in run.
bench-json:
	$(GO) run ./cmd/fannr-bench -json BENCH_PR4.json

## Semantic-cache benchmark: hit rate and cold/warm/latency-saved
## quantiles under a Zipf-repeat workload; BENCH_PR5.json is the
## checked-in run.
bench-cache:
	$(GO) run ./cmd/fannr-bench -cache BENCH_PR5.json

## Observability overhead guard: GD with the Stats hook disabled (nil
## pointer tests only) vs. enabled. The disabled column is the §11 budget.
bench-overhead:
	$(GO) test -run - -bench 'GDStats' -benchtime 1000x ./internal/core/

## Hot-path benchmark: batched one-to-many distance lookups vs the
## per-pair baseline for every batching engine; BENCH_PR6.json is the
## checked-in run.
bench-hotpath:
	$(GO) run ./cmd/fannr-bench -hotpath BENCH_PR6.json

## Hot-path regression guard: rerun the benchmark and fail if any IER
## engine regresses >10% against the checked-in BENCH_PR6.json on both
## batched cold p50 and same-run batched-vs-per-pair speedup (the ratio
## cancels machine-speed noise between runs).
bench-guard:
	$(GO) run ./cmd/fannr-bench -guard BENCH_PR6.json

## Index load benchmark: time-to-first-query for heap deserialization vs
## zero-copy mmap over the same v4 files, as a same-run ratio. Fails if
## mmap is not ≥10× faster per index; BENCH_PR7.json is the checked-in
## run. Builds ~225 MB of indexes in a temp dir first (a few minutes).
bench-load:
	$(GO) run ./cmd/fannr-bench -load BENCH_PR7.json -scale 0.0625

## Benchmark trend gate: rerun the headline set and diff it against the
## checked-in BENCH_PR9.json with same-run ratio normalization (each
## algorithm's p50 over its own run's geometric mean, so uniform host
## noise cancels). Fails on >10% normalized regressions or op-count
## growth on the identical workload. 16 queries per algorithm keeps the
## quantiles stable on a noisy 1-CPU host (8 is not enough: the
## heavyweight algorithms' p50 swings >2x run-to-run). Refresh the
## baseline (copy BENCH_TREND.json over BENCH_PR9.json) when a PR
## changes performance on purpose.
bench-trend:
	$(GO) run ./cmd/fannr-bench -json BENCH_TREND.json -queries 16
	$(GO) run ./cmd/fannr-bench -compare BENCH_PR9.json BENCH_TREND.json

## Sharded-serving benchmark: coordinator overhead (same-run ratio vs a
## direct single-process engine) and shard fan-out at S ∈ {1,2,4} on a
## clustered workload; fails unless the g_φ bound prunes (mean shards
## contacted < S). BENCH_PR10.json is the checked-in run.
bench-shards:
	$(GO) run ./cmd/fannr-bench -shards BENCH_PR10.json -scale 0.015625 -queries 16
