package fannr_test

import (
	"fmt"
	"log"

	"fannr"
)

// buildFig1 constructs the road network of the paper's Fig. 1 running
// example. Node ids: p1..p9 -> 0..8, q1 -> 9, q2 -> 10; q3 = p4, q4 = p5.
func buildFig1() (*fannr.Graph, []fannr.NodeID, []fannr.NodeID) {
	b := fannr.NewBuilder(11)
	edges := []fannr.Edge{
		{U: 1, V: 9, W: 10}, // p2 - q1
		{U: 9, V: 2, W: 2},  // q1 - p3
		{U: 2, V: 10, W: 2}, // p3 - q2
		{U: 10, V: 5, W: 8}, // q2 - p6
		{U: 1, V: 3, W: 12}, // p2 - p4 (q3)
		{U: 1, V: 4, W: 16}, // p2 - p5 (q4)
		{U: 0, V: 1, W: 30}, // p1
		{U: 0, V: 6, W: 5},  // p7
		{U: 6, V: 7, W: 6},  // p8
		{U: 7, V: 8, W: 7},  // p9
	}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.W); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	P := []fannr.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}
	Q := []fannr.NodeID{9, 10, 3, 4}
	return g, P, Q
}

// Example_paperFigure1 reproduces the running example of the paper's
// Fig. 1: nine data points, four query points (two co-located with data
// points), and the four queries whose answers the paper states in its
// introduction.
func Example_paperFigure1() {
	g, P, Q := buildFig1()
	gp := fannr.NewINE(g)
	name := func(p fannr.NodeID) string { return fmt.Sprintf("p%d", p+1) }

	for _, c := range []struct {
		label string
		phi   float64
		agg   fannr.Aggregate
	}{
		{"max-ANN        ", 1.0, fannr.Max},
		{"sum-ANN        ", 1.0, fannr.Sum},
		{"max-FANN phi=.5", 0.5, fannr.Max},
		{"sum-FANN phi=.5", 0.5, fannr.Sum},
	} {
		ans, err := fannr.GD(g, gp, fannr.Query{P: P, Q: Q, Phi: c.phi, Agg: c.agg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s with aggregate distance %.0f\n", c.label, name(ans.P), ans.Dist)
	}
	// Output:
	// max-ANN         -> p2 with aggregate distance 16
	// sum-ANN         -> p2 with aggregate distance 52
	// max-FANN phi=.5 -> p3 with aggregate distance 2
	// sum-FANN phi=.5 -> p3 with aggregate distance 4
}

// ExampleExactMax shows the index-free exact algorithm for the max
// aggregate, including the optimal flexible subset it returns.
func ExampleExactMax() {
	g, P, Q := buildFig1()
	ans, err := fannr.ExactMax(g, fannr.NewINE(g), fannr.Query{
		P: P, Q: Q, Phi: 0.5, Agg: fannr.Max,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p* = p%d, d* = %.0f, |Q*_phi| = %d\n", ans.P+1, ans.Dist, len(ans.Subset))
	// Output:
	// p* = p3, d* = 2, |Q*_phi| = 2
}

// ExampleAPXSum shows the 3-approximation for sum; on the Fig. 1 example
// it returns the true optimum because the nearest neighbors of Q already
// include it.
func ExampleAPXSum() {
	g, P, Q := buildFig1()
	q := fannr.Query{P: P, Q: Q, Phi: 0.5, Agg: fannr.Sum}
	ans, err := fannr.APXSum(g, fannr.NewINE(g), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p* = p%d, d* = %.0f (proven ratio <= %.0f)\n",
		ans.P+1, ans.Dist, fannr.APXSumRatioBound(q))
	// Output:
	// p* = p3, d* = 4 (proven ratio <= 3)
}

// ExampleKGD answers a top-k flexible query: the three best candidate
// sites by flexible max distance.
func ExampleKGD() {
	g, P, Q := buildFig1()
	answers, err := fannr.KGD(g, fannr.NewINE(g), fannr.Query{
		P: P, Q: Q, Phi: 0.5, Agg: fannr.Max,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	// p2 and p6 tie at distance 12, so print distances only (the tie
	// order between equal answers is unspecified).
	for i, a := range answers {
		fmt.Printf("rank %d: distance %.0f\n", i+1, a.Dist)
	}
	// Output:
	// rank 1: distance 2
	// rank 2: distance 12
	// rank 3: distance 12
}

// ExampleOMP finds the optimal meeting point — any network node — for the
// Fig. 1 query points under the max aggregate.
func ExampleOMP() {
	g, _, Q := buildFig1()
	ans, err := fannr.OMP(g, fannr.NewINE(g), Q, fannr.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meet at node %d; farthest member travels %.0f\n", ans.P, ans.Dist)
	// Output:
	// meet at node 1; farthest member travels 16
}

// ExampleVerify checks an answer against Definition 2 by independent
// computation.
func ExampleVerify() {
	g, P, Q := buildFig1()
	q := fannr.Query{P: P, Q: Q, Phi: 0.5, Agg: fannr.Max}
	ans, err := fannr.RList(g, fannr.NewINE(g), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", fannr.Verify(g, q, ans) == nil)
	// Output:
	// verified: true
}
