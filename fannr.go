// Package fannr is a pure-Go library for flexible aggregate nearest
// neighbor queries in road networks (FANN_R), reproducing "Flexible
// Aggregate Nearest Neighbor Queries in Road Networks" (ICDE 2018).
//
// Given a road network G, data points P, query points Q, a flexibility
// φ ∈ (0,1] and an aggregate g ∈ {max, sum}, an FANN_R query returns the
// data point minimizing the aggregate network distance to its ⌈φ|Q|⌉
// nearest query points — e.g., the best place for a logistics center that
// only needs to supply half of the camps, or a meeting venue that only
// needs a quorum present.
//
// # Quickstart
//
//	g, _ := fannr.Generate(fannr.GenConfig{Nodes: 10000, Seed: 1})
//	gp := fannr.NewINE(g) // index-free g_φ engine
//	ans, _ := fannr.GD(g, gp, fannr.Query{
//		P: p, Q: q, Phi: 0.5, Agg: fannr.Max,
//	})
//	fmt.Println(ans.P, ans.Dist, ans.Subset)
//
// Algorithms: GD (enumerate P), RList (threshold algorithm), IERKNN
// (best-first over an R-tree on P), ExactMax (counter-based exact max),
// APXSum (3-approximate sum), and K* top-k variants. Engines: INE
// (index-free), point-to-point oracles (A*, bidirectional Dijkstra, hub
// labels, G-tree), and IER engines combining an R-tree over Q with any
// oracle.
//
// This root package is a facade re-exporting the implementation packages
// under internal/; see DESIGN.md for the architecture and EXPERIMENTS.md
// for the reproduced evaluation.
package fannr

import (
	"io"

	"fannr/internal/binio"
	"fannr/internal/ch"
	"fannr/internal/core"
	"fannr/internal/exp"
	"fannr/internal/graph"
	"fannr/internal/gtree"
	"fannr/internal/phl"
	"fannr/internal/rtree"
	"fannr/internal/server"
	"fannr/internal/sp"
	"fannr/internal/workload"
)

// Road-network substrate.
type (
	// Graph is an immutable road network (undirected, weighted, with
	// optional planar coordinates).
	Graph = graph.Graph
	// Builder constructs a Graph from nodes and edges.
	Builder = graph.Builder
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// NodeID identifies a node; ids are dense in [0, NumNodes).
	NodeID = graph.NodeID
	// GenConfig controls the synthetic road-network generator.
	GenConfig = graph.GenConfig
)

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Generate builds a synthetic road network (jittered grid with highway
// overlay, reduced to its largest connected component).
func Generate(cfg GenConfig) (*Graph, error) { return graph.Generate(cfg) }

// ReadDIMACS parses a 9th-DIMACS-challenge .gr stream and optional .co
// coordinate stream.
func ReadDIMACS(gr, co io.Reader) (*Graph, error) { return graph.ReadDIMACS(gr, co) }

// WriteDIMACS writes a graph in DIMACS format.
func WriteDIMACS(g *Graph, gr, co io.Writer) error { return graph.WriteDIMACS(g, gr, co) }

// LargestComponent extracts the largest connected component.
func LargestComponent(g *Graph) (*Graph, []NodeID, error) { return graph.LargestComponent(g) }

// Projection maps coordinates into a new planar frame.
type Projection = graph.Projection

// Equirectangular returns a lon/lat projection at the given mid-latitude.
func Equirectangular(midLatDegrees float64) Projection {
	return graph.Equirectangular(midLatDegrees)
}

// EquirectangularFor derives the projection from a graph's coordinate
// bounding box (handles the DIMACS microdegree convention).
func EquirectangularFor(g *Graph) Projection { return graph.EquirectangularFor(g) }

// Reproject rebuilds g with every coordinate passed through proj,
// recalibrating the Euclidean lower bounds for the new frame.
func Reproject(g *Graph, proj Projection) (*Graph, error) { return graph.Reproject(g, proj) }

// SplitEdge places a new vertex on edge (u,v) at fraction t of its
// weight — the exact treatment for query or data objects that lie on an
// edge (§II-A of the paper).
func SplitEdge(g *Graph, u, v NodeID, t float64) (*Graph, NodeID, error) {
	return graph.SplitEdge(g, u, v, t)
}

// ContractChains collapses degree-2 chains into single edges, preserving
// distances among retained vertices — the standard simplification pass
// for raw DIMACS networks. keep pins extra vertices (e.g., POI hosts).
func ContractChains(g *Graph, keep func(NodeID) bool) (*Graph, []NodeID, error) {
	return graph.ContractChains(g, keep)
}

// Queries and answers.
type (
	// Query is an FANN_R query (P, Q, φ, g).
	Query = core.Query
	// Answer is the result triple (p*, Q*_φ, d*).
	Answer = core.Answer
	// Aggregate selects max or sum.
	Aggregate = core.Aggregate
	// GPhi computes the flexible aggregate function g_φ(p, Q).
	GPhi = core.GPhi
	// Oracle answers exact shortest-path distance queries.
	Oracle = core.Oracle
	// IEROptions tunes the IER-kNN framework.
	IEROptions = core.IEROptions
)

// Aggregates.
const (
	Max = core.Max
	Sum = core.Sum
)

// Error sentinels. Every algorithm failure wraps one of these, so callers
// classify with errors.Is instead of string matching.
var (
	// ErrNoResult is returned when no data point reaches ⌈φ|Q|⌉ query
	// points.
	ErrNoResult = core.ErrNoResult
	// ErrCanceled is returned when a query's Cancel hook (usually bound to
	// a context via Query.BindContext) fires mid-search.
	ErrCanceled = core.ErrCanceled
	// ErrInvalid wraps every query-validation failure (empty sets, φ out
	// of (0,1], node ids out of range, wrong aggregate for an algorithm).
	ErrInvalid = core.ErrInvalid
)

// FANN_R algorithms (see package core for the paper mapping).
var (
	// GD enumerates P, evaluating g_φ on every data point (§III-A).
	GD = core.GD
	// RList is the threshold algorithm over per-query-point queues (§III-B).
	RList = core.RList
	// IERKNN is the best-first IER-kNN framework (Algorithm 1).
	IERKNN = core.IERKNN
	// ExactMax is the counter-based exact algorithm for max (Algorithm 2).
	ExactMax = core.ExactMax
	// APXSum is the 3-approximation for sum (Algorithm 3).
	APXSum = core.APXSum
	// Brute is the unoptimized reference solver.
	Brute = core.Brute
	// APXSumRatioBound returns 2 when Q ⊆ P, else 3 (Theorems 1-2).
	APXSumRatioBound = core.APXSumRatioBound
	// Verify checks an Answer against Definition 2 by independent
	// computation.
	Verify = core.Verify

	// KGD, KRList, KIERKNN, KExactMax, KBrute answer k-FANN_R queries (§V).
	KGD       = core.KGD
	KRList    = core.KRList
	KIERKNN   = core.KIERKNN
	KExactMax = core.KExactMax
	KBrute    = core.KBrute
	// KAPXSum is fannr's beyond-paper top-k extension of APX-sum (the
	// rank-1 answer keeps the 3-approximation bound; deeper ranks are
	// heuristic).
	KAPXSum = core.KAPXSum

	// BuildPTree indexes P in an R-tree for IERKNN.
	BuildPTree = core.BuildPTree

	// ANN answers the classic aggregate nearest neighbor query (FANN_R at
	// φ = 1).
	ANN = core.ANN
	// OMP answers the optimal meeting point query (FANN_R over an
	// implicit P = V, φ = 1).
	OMP = core.OMP
	// FlexibleOMP is OMP with a flexibility parameter.
	FlexibleOMP = core.FlexibleOMP
)

// g_φ engines (Table I of the paper).
var (
	// NewINE returns the index-free incremental-network-expansion engine.
	NewINE = core.NewINE
	// NewOracleGPhi wraps any distance oracle as a g_φ engine.
	NewOracleGPhi = core.NewOracleGPhi
	// NewGTreeGPhi returns the occurrence-list kNN engine over a G-tree.
	NewGTreeGPhi = core.NewGTreeGPhi
	// NewIERGPhi combines an R-tree over Q with a distance oracle.
	NewIERGPhi = core.NewIERGPhi
)

// Concurrent query serving.
type (
	// EnginePool is a named, bounded free-list of g_φ engines: engines
	// stay single-goroutine per checkout while the shared indexes serve
	// any number of concurrent readers.
	EnginePool = core.EnginePool
	// EngineFactory builds a fresh engine over shared immutable indexes.
	EngineFactory = core.EngineFactory
)

// NewEnginePool returns a pool producing engines from factory; capacity
// bounds the idle free-list (0 = GOMAXPROCS).
func NewEnginePool(name string, capacity int, factory EngineFactory) *EnginePool {
	return core.NewEnginePool(name, capacity, factory)
}

// Distance oracles and indexes.
type (
	// PHLIndex is an exact 2-hop hub-label index (the paper's PHL role).
	PHLIndex = phl.Index
	// PHLOptions configures hub-label construction.
	PHLOptions = phl.Options
	// GTree is the G-tree road-network index.
	GTree = gtree.Tree
	// GTreeOptions configures G-tree construction.
	GTreeOptions = gtree.Options
	// RTree is a 2-D R-tree over points.
	RTree = rtree.Tree
)

// BuildPHL constructs hub labels for g.
func BuildPHL(g *Graph, opts PHLOptions) (*PHLIndex, error) { return phl.Build(g, opts) }

// ReadPHL loads hub labels previously persisted with PHLIndex.Save.
func ReadPHL(r io.Reader) (*PHLIndex, error) { return phl.Read(r) }

// BuildGTree constructs a G-tree for g.
func BuildGTree(g *Graph, opts GTreeOptions) (*GTree, error) { return gtree.Build(g, opts) }

// ReadGTree loads a G-tree previously persisted with GTree.Save,
// reattaching it to the graph it was built on.
func ReadGTree(r io.Reader, g *Graph) (*GTree, error) { return gtree.Read(r, g) }

// LoadOptions controls how a persisted index file is opened by LoadPHL
// and LoadGTree.
type LoadOptions struct {
	// Mmap memory-maps format-v4 index files read-only and points the
	// index's slabs straight at the mapping (zero-copy, demand-paged —
	// time to first query is independent of index size). Pre-v4 files
	// fall back to a heap conversion read. The file must stay unmodified
	// on disk for the index's lifetime; Close the index to unmap.
	Mmap bool
	// Verify forces per-section checksum verification even under Mmap.
	// Heap loads always verify; mapped loads skip it by default so that
	// opening a beyond-RAM index does not fault in every page.
	Verify bool
}

// LoadPHL opens a hub-label index file (format v3 or v4).
func LoadPHL(path string, opts LoadOptions) (*PHLIndex, error) {
	return phl.Load(path, phl.LoadOptions(opts))
}

// LoadGTree opens a G-tree index file (format v3 or v4), reattaching it
// to the graph it was built on.
func LoadGTree(path string, g *Graph, opts LoadOptions) (*GTree, error) {
	return gtree.Load(path, g, gtree.LoadOptions(opts))
}

// FormatVersionError is returned (wrapped) when an index file's on-disk
// format version differs from what this build reads — e.g. a v2 file
// offered to the v4 loader. Rebuild or convert the file with
// fannr-index.
type FormatVersionError = binio.FormatVersionError

// ReadCH loads a contraction hierarchy previously persisted with
// CHIndex.Save.
func ReadCH(r io.Reader) (*CHIndex, error) { return ch.Read(r) }

// NewDijkstra returns a reusable single-source search engine.
func NewDijkstra(g *Graph) *sp.Dijkstra { return sp.NewDijkstra(g) }

// NewAStar returns a reusable A* point-to-point engine.
func NewAStar(g *Graph) *sp.AStar { return sp.NewAStar(g) }

// NewBiDijkstra returns a reusable bidirectional Dijkstra engine.
func NewBiDijkstra(g *Graph) *sp.BiDijkstra { return sp.NewBiDijkstra(g) }

// NewALT returns an A*-with-landmarks engine (triangle-inequality lower
// bounds; works without coordinates).
func NewALT(g *Graph, numLandmarks int) *sp.ALT { return sp.NewALT(g, numLandmarks) }

// Contraction hierarchies (an extension beyond the paper's Table I).
type (
	// CHIndex is a contraction-hierarchy shortest-path index.
	CHIndex = ch.Index
	// CHOptions tunes CH preprocessing.
	CHOptions = ch.Options
)

// BuildCH contracts g into a hierarchy; queriers from the index serve as
// distance oracles for the g_φ engines.
func BuildCH(g *Graph, opts CHOptions) (*CHIndex, error) { return ch.Build(g, opts) }

// Workload generation (the paper's §VI-A factors).
type (
	// WorkloadParams are the experimental factors d, A, M, C, φ.
	WorkloadParams = workload.Params
	// WorkloadGenerator draws P and Q sets over one network.
	WorkloadGenerator = workload.Generator
	// POILayer is a Table IV point-of-interest layer.
	POILayer = workload.POILayer
)

// NewWorkloadGenerator seeds a generator on g.
func NewWorkloadGenerator(g *Graph, seed int64) *WorkloadGenerator {
	return workload.NewGenerator(g, seed)
}

// DefaultWorkloadParams returns the paper's defaults (d=0.001, A=10%,
// M=128, C=1, φ=0.5).
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// POITableIV lists the paper's Table IV POI layers.
func POITableIV() []POILayer { return workload.TableIV }

// FindPOILayer returns the Table IV layer with the given name.
func FindPOILayer(name string) (POILayer, error) { return workload.FindPOILayer(name) }

// LoadDataset materializes a Table III dataset at the given scale.
func LoadDataset(name string, scale float64) (*Graph, error) {
	return workload.LoadDataset(name, scale)
}

// HTTP query service.
type (
	// QueryServer serves FANN_R queries over HTTP (see internal/server
	// for the endpoint contract).
	QueryServer = server.Server
	// ServerOptions selects which engines the server offers.
	ServerOptions = server.Options
	// FANNRequest is the /fann request body.
	FANNRequest = server.FANNRequest
	// FANNResponse is the /fann response body.
	FANNResponse = server.FANNResponse
	// ServerError is the stable JSON error shape every non-2xx response
	// carries: a human-readable message plus a machine-readable code
	// ("invalid", "not_found", "too_large", "timeout", "internal").
	ServerError = server.ErrorResponse
)

// NewQueryServer builds an HTTP query server over g.
func NewQueryServer(g *Graph, opts ServerOptions) (*QueryServer, error) {
	return server.New(g, opts)
}

// Experiments (every figure and table of the paper's evaluation).
type (
	// ExpConfig controls an experiment run.
	ExpConfig = exp.Config
	// ExpTable is a rendered experiment result.
	ExpTable = exp.Table
	// BenchReport is the machine-readable trajectory fannr-bench -json
	// emits: per-algorithm latency quantiles plus operation counts.
	BenchReport = exp.BenchReport
	// CacheBenchReport is the semantic-cache benchmark report fannr-bench
	// -cache emits: hit rate plus cold/warm/latency-saved quantiles under
	// a Zipf-repeat workload.
	CacheBenchReport = exp.CacheBenchReport
	// HotpathReport is the zero-alloc hot-path benchmark fannr-bench
	// -hotpath emits: batched vs per-pair distance-lookup latency per
	// engine, plus the headline algorithm table.
	HotpathReport = exp.HotpathReport
	// LoadReport is the index time-to-first-query benchmark fannr-bench
	// -load emits: heap vs zero-copy mmap load latency per index, as a
	// same-run ratio.
	LoadReport = exp.LoadReport
	// ShardBenchReport is the scatter-gather serving benchmark fannr-bench
	// -shards emits: coordinator overhead (coordinated / direct wall time,
	// same run) and shard fan-out counts per shard count.
	ShardBenchReport = exp.ShardBenchReport
	// BenchComparison is the trend diff of two -json bench reports
	// (fannr-bench -compare): per-algorithm lines plus CI-failing
	// violations.
	BenchComparison = exp.BenchComparison
)

// RunExperiment regenerates one of the paper's figures or tables by id
// (e.g. "fig4a", "table5"); ExperimentIDs lists them.
func RunExperiment(id string, cfg ExpConfig) ([]*ExpTable, error) { return exp.Run(id, cfg) }

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return exp.ExperimentIDs() }

// RunBenchJSON measures the headline algorithm set over default-parameter
// workloads and returns the structured report (fannr-bench -json).
func RunBenchJSON(cfg ExpConfig) (*BenchReport, error) { return exp.RunBenchJSON(cfg) }

// RunCacheBench measures the semantic query cache under a Zipf-repeat
// workload and returns the structured report (fannr-bench -cache).
func RunCacheBench(cfg ExpConfig) (*CacheBenchReport, error) { return exp.RunCacheBench(cfg) }

// RunHotpathBench measures batched one-to-many distance lookups against
// the per-pair baseline for every batching engine and returns the
// structured report (fannr-bench -hotpath).
func RunHotpathBench(cfg ExpConfig) (*HotpathReport, error) { return exp.RunHotpathBench(cfg) }

// GuardHotpath compares a fresh hot-path run against a checked-in
// baseline report, returning a description of every IER engine whose
// batched cold p50 regressed beyond tolerance (fractional; 0.10 = 10%)
// while its same-run batched-vs-per-pair speedup also fell beyond
// tolerance — the second signal cancels machine-speed noise between
// runs, so only genuine batching regressions fire.
func GuardHotpath(baseline, current *HotpathReport, tolerance float64) []string {
	return exp.GuardHotpath(baseline, current, tolerance)
}

// RunLoadBench measures time-to-first-query for the heap and zero-copy
// mmap index load paths over the same persisted v4 files and returns the
// structured report (fannr-bench -load). The headline per-index number
// is the same-run heap/mmap ratio.
func RunLoadBench(cfg ExpConfig) (*LoadReport, error) { return exp.RunLoadBench(cfg) }

// GuardLoad checks a load report's same-run invariant: every index must
// open at least minSpeedup× faster mmapped than heap-deserialized.
func GuardLoad(report *LoadReport, minSpeedup float64) []string {
	return exp.GuardLoad(report, minSpeedup)
}

// RunShardBench measures the sharded scatter-gather serving path against
// the direct single-process engine, same workload same run, at each of
// counts (default 1, 2, 4) — coordinator overhead as a same-run ratio
// plus mean shards contacted/pruned per query (fannr-bench -shards).
func RunShardBench(cfg ExpConfig, counts ...int) (*ShardBenchReport, error) {
	return exp.RunShardBench(cfg, counts...)
}

// GuardShard checks a shard report's pruning invariant: at every shard
// count above one, mean shards contacted must be strictly below the
// count — the per-shard g_φ bound demonstrably pruning.
func GuardShard(report *ShardBenchReport) []string {
	return exp.GuardShard(report)
}

// CompareBench diffs two fannr-bench -json reports with same-run ratio
// normalization (each algorithm's p50 relative to its own run's
// geometric mean), so uniform host-speed noise cancels and only
// shape changes — one algorithm slowing relative to its peers, or op
// counts growing on an identical workload — count as regressions.
func CompareBench(old, current *BenchReport, tolerance float64) BenchComparison {
	return exp.CompareBench(old, current, tolerance)
}
