module fannr

go 1.22
